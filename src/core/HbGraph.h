//===- core/HbGraph.h - Transactional happens-before graph ------*- C++ -*-===//
//
// The dynamically maintained happens-before graph over transaction nodes
// (Sections 4 and 5 of the paper), with the three properties that make the
// analysis scale:
//
//  * Reference-counting garbage collection: a node's reference count is the
//    number of incoming H edges plus one while its transaction is still
//    open. Incoming edges can only be added by the node's own thread, so a
//    finished node with no incoming edges can never join a cycle and is
//    collected immediately; collection cascades along its outgoing edges.
//
//  * Ancestor sets: each live node knows the set of live nodes that reach
//    it, so a cycle-closing edge is detected at insertion time in O(set
//    lookup), the graph is kept acyclic (the offending edge is reported and
//    not added), and merge()'s happens-before queries are O(set lookup).
//
//  * Slot recycling with stale-step detection: L/U/R/W hold weak Step
//    references; a step whose timestamp is at or below its slot's collection
//    watermark dereferences to bottom.
//
// Edges store the timestamps of the operations at their tail and head plus a
// compact description of the inducing operation — the raw material for blame
// assignment and dot error graphs. At most one edge is kept per node pair
// (the paper's H (+) operation), bounding |H| by |Node|^2.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_CORE_HBGRAPH_H
#define VELO_CORE_HBGRAPH_H

#include "analysis/Snapshot.h"
#include "core/Step.h"
#include "events/Event.h"
#include "support/FlatSet.h"
#include "support/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace velo {

/// Compact description of the operation that induced a happens-before edge
/// (used to label edges in error graphs, e.g. "acq(#2)" or "wr y").
struct EdgeInfo {
  Op Kind = Op::Read;
  uint32_t Target = 0; ///< var / lock / label id, per Kind.
  Tid Thread = 0;      ///< thread performing the head operation.
};

/// One happens-before edge, stored on its source node.
struct HbEdge {
  NodeId Dst = 0;
  uint64_t TailStamp = 0; ///< timestamp of the source-transaction operation.
  uint64_t HeadStamp = 0; ///< timestamp of the target-transaction operation.
  EdgeInfo Info;
};

/// A transaction node on a cycle, reported back to the analysis.
struct CycleEntry {
  NodeId Node = 0;
  Tid Owner = 0;
  Label Root = NoLabel;  ///< outermost atomic block label, NoLabel if unary.
  HbEdge OutEdge;        ///< the cycle edge leaving this node.
};

/// A happens-before cycle: Entries[0] is the node the cycle-closing edge
/// points at (the currently executing transaction); the closing edge itself
/// is Entries.back().OutEdge.
struct CycleReport {
  std::vector<CycleEntry> Entries;

  /// Is the cycle "increasing" (Section 4.3): at every node other than the
  /// blamed one, the incoming-edge timestamp is <= the outgoing-edge
  /// timestamp? When true, Entries[0]'s transaction is provably not
  /// self-serializable.
  bool Increasing = false;
  /// Timestamp within the blamed node of the cycle's root operation (tail
  /// of the edge leaving Entries[0]).
  uint64_t RootStamp = 0;
  /// Timestamp within the blamed node of the target operation (head of the
  /// closing edge).
  uint64_t TargetStamp = 0;
};

/// The happens-before graph on transaction nodes.
class HbGraph {
public:
  /// Allocate a node for a new transaction by Owner whose outermost atomic
  /// block is labeled Root (NoLabel for a merge-created unary node). Active
  /// nodes carry the +1 "open transaction" reference; unary merge nodes are
  /// born finished. Returns the node's first step, or bottom when all
  /// 65535 slots are pinned live (GraphFull — see graphFull()); the graph
  /// is then degraded, never the process.
  Step allocNode(Tid Owner, Label Root, bool Active);

  /// Has a node allocation ever failed for lack of slots? Once full, the
  /// analysis wrapping this graph can no longer certify serializability
  /// (missing nodes mean missing edges) and should degrade or stop.
  bool graphFull() const { return Full; }

  /// Issue the next timestamp within the node of S (the paper's "L(t)+1").
  /// Bottom maps to bottom.
  Step tick(Step S);

  /// Is S non-bottom and not stale (its slot not collected at or after S's
  /// timestamp)? Stale steps must be treated as bottom by the analysis.
  bool isLive(Step S) const;

  /// Resolve a possibly-stale step to a live step or bottom.
  Step resolve(Step S) const { return isLive(S) ? S : Step::bottom(); }

  enum class AddEdgeResult {
    Added,   ///< edge inserted (or an existing edge's stamps refreshed)
    Skipped, ///< bottom/stale source or intra-node edge; nothing to do
    Cycle    ///< edge would close a cycle; reported, not inserted
  };

  /// Add the happens-before edge From -> To (Info describes the operation at
  /// the head). To must be live. On a would-be cycle, fills *CycleOut (if
  /// non-null) and leaves the graph unchanged.
  AddEdgeResult addEdge(Step From, Step To, const EdgeInfo &Info,
                        CycleReport *CycleOut);

  /// Mark the transaction of node Slot finished (drops the open-transaction
  /// reference; may collect the node and cascade).
  void finishNode(NodeId Slot);

  /// Does A happen before or equal B (A == B, or a path A => B exists among
  /// live nodes)? Both must be live slots.
  bool happensBeforeEq(NodeId A, NodeId B) const;

  /// Is the node of live step S an open transaction?
  bool isActive(NodeId Slot) const { return Slots[Slot].Active; }

  Tid ownerOf(NodeId Slot) const { return Slots[Slot].Owner; }
  Label rootOf(NodeId Slot) const { return Slots[Slot].Root; }

  /// The paper's merge function (Figure 4), with the representative
  /// restricted to finished nodes (see the soundness note in DESIGN.md):
  ///  - if every input resolves to bottom, returns bottom;
  ///  - else if some live input step S_j has a *finished* node that every
  ///    other live input happens-before-or-equals, returns S_j;
  ///  - else allocates a fresh (finished, unary) node with an edge from
  ///    every live input, and returns its first step.
  /// Info describes the unary operation, for edge labeling.
  Step merge(const std::vector<Step> &Inputs, Tid Owner,
             const EdgeInfo &Info);

  // --- Statistics (Table 1, right half) ---
  uint64_t nodesAllocated() const { return NumAllocated; }
  uint64_t nodesAlive() const { return Alive.current(); }
  uint64_t maxNodesAlive() const { return Alive.peak(); }
  uint64_t edgesAdded() const { return NumEdges; }
  uint64_t nodesMerged() const { return NumMerged; }

  /// Reset to the empty graph (drops all nodes and statistics).
  void clear();

  /// Checkpoint the complete graph (slots, edges, ancestor sets, free
  /// list, statistics) / restore it into an empty graph. Steps held by the
  /// owning analysis stay valid across the round-trip because slot indices
  /// and stamps are preserved exactly.
  void serialize(SnapshotWriter &W) const;
  bool deserialize(SnapshotReader &R);

private:
  struct Node {
    bool InUse = false;
    bool Active = false;
    uint32_t RefCount = 0;
    Tid Owner = 0;
    Label Root = NoLabel;
    /// Last timestamp issued in this slot; monotone across recycling.
    uint64_t CurStamp = 0;
    /// Steps with stamp <= this are stale (refer to a collected incarnation).
    uint64_t StaleAtOrBelow = 0;
    std::vector<HbEdge> Out;
    FlatSet<NodeId> Ancestors;
  };

  Step freshStamp(NodeId Slot);
  void collect(NodeId Slot); ///< free Slot and cascade.
  void buildCycleReport(NodeId From, NodeId To, const HbEdge &Closing,
                        CycleReport &Out) const;

  std::vector<Node> Slots;
  std::vector<NodeId> FreeList;

  uint64_t NumAllocated = 0;
  uint64_t NumEdges = 0;
  uint64_t NumMerged = 0;
  HighWater Alive;
  bool Full = false;
};

} // namespace velo

#endif // VELO_CORE_HBGRAPH_H
