//===- core/BasicVelodrome.cpp - Figure 2 reference analysis --------------===//

#include "core/BasicVelodrome.h"

#include <algorithm>
#include <cassert>

namespace velo {

void BasicVelodrome::beginAnalysis(const SymbolTable &Syms) {
  Backend::beginAnalysis(Syms);
  Nodes.clear();
  Current.clear();
  Depth.clear();
  LastTxn.clear();
  Unlock.clear();
  LastWr.clear();
  LastRd.clear();
  ViolationCount = 0;
  Flagged.clear();
}

uint32_t BasicVelodrome::newNode(Tid Owner, Label Root) {
  Nodes.push_back({Owner, Root, {}});
  return static_cast<uint32_t>(Nodes.size() - 1);
}

bool BasicVelodrome::reaches(uint32_t From, uint32_t To) const {
  // Plain DFS; the reference analysis favors clarity over speed.
  std::vector<uint32_t> Work{From};
  std::set<uint32_t> Seen{From};
  while (!Work.empty()) {
    uint32_t N = Work.back();
    Work.pop_back();
    if (N == To)
      return true;
    for (uint32_t Succ : Nodes[N].Out)
      if (Seen.insert(Succ).second)
        Work.push_back(Succ);
  }
  return false;
}

void BasicVelodrome::addEdge(uint32_t From, uint32_t To) {
  if (From == None || From == To)
    return; // the (+) operation filters bottom sources and self edges
  if (reaches(To, From)) {
    // Non-trivial cycle: record a violation against the transaction the
    // closing edge enters, keep the graph acyclic.
    ++ViolationCount;
    Flagged.insert(Nodes[To].Root);
    return;
  }
  for (uint32_t Succ : Nodes[From].Out)
    if (Succ == To)
      return;
  Nodes[From].Out.push_back(To);
}

uint32_t BasicVelodrome::opNode(Tid T) {
  auto It = Current.find(T);
  if (It != Current.end() && It->second != None)
    return It->second;
  // [INS OUTSIDE]: enter a fresh unary transaction for this operation.
  uint32_t N = newNode(T, NoLabel);
  auto L = LastTxn.find(T);
  addEdge(L == LastTxn.end() ? None : L->second, N);
  return N;
}

void BasicVelodrome::finishOp(Tid T, uint32_t Node) {
  // [INS EXIT] for the implicit unary transaction (no-op when inside a
  // real transaction, which ends at its own end(t)).
  auto It = Current.find(T);
  if (It == Current.end() || It->second == None)
    LastTxn[T] = Node;
}

void BasicVelodrome::onEvent(const Event &E) {
  countEvent();
  Tid T = E.Thread;
  switch (E.Kind) {
  case Op::Begin: {
    int &D = Depth[T];
    if (D++ > 0)
      return; // nested: stays inside the enclosing transaction
    // [INS ENTER]
    uint32_t N = newNode(T, E.label());
    auto L = LastTxn.find(T);
    addEdge(L == LastTxn.end() ? None : L->second, N);
    Current[T] = N;
    return;
  }
  case Op::End: {
    int &D = Depth[T];
    if (D <= 0)
      return; // unmatched end: the sanitizer owns rejection; stay safe here
    if (--D > 0)
      return;
    // [INS EXIT]
    LastTxn[T] = Current[T];
    Current[T] = None;
    return;
  }
  case Op::Acquire: {
    uint32_t N = opNode(T);
    auto U = Unlock.find(E.lock());
    addEdge(U == Unlock.end() ? None : U->second, N); // [INS ACQUIRE]
    finishOp(T, N);
    return;
  }
  case Op::Release: {
    uint32_t N = opNode(T);
    Unlock[E.lock()] = N; // [INS RELEASE]
    finishOp(T, N);
    return;
  }
  case Op::Read: {
    uint32_t N = opNode(T);
    auto W = LastWr.find(E.var());
    addEdge(W == LastWr.end() ? None : W->second, N); // [INS READ]
    LastRd[E.var()][T] = N;
    finishOp(T, N);
    return;
  }
  case Op::Write: {
    uint32_t N = opNode(T);
    auto W = LastWr.find(E.var());
    addEdge(W == LastWr.end() ? None : W->second, N); // [INS WRITE]
    for (const auto &[Rt, Rn] : LastRd[E.var()])
      addEdge(Rn, N);
    LastWr[E.var()] = N;
    finishOp(T, N);
    return;
  }
  case Op::Fork: {
    // Thread-ordering edge: the child's first transaction happens after
    // the fork operation's transaction.
    uint32_t N = opNode(T);
    LastTxn[E.child()] = N;
    finishOp(T, N);
    return;
  }
  case Op::Join: {
    uint32_t N = opNode(T);
    auto L = LastTxn.find(E.child());
    addEdge(L == LastTxn.end() ? None : L->second, N);
    finishOp(T, N);
    return;
  }
  }
}

namespace {

template <typename MapT, typename Fn>
void forEachSorted(const MapT &M, Fn Visit) {
  std::vector<typename MapT::key_type> Keys;
  Keys.reserve(M.size());
  for (const auto &KV : M)
    Keys.push_back(KV.first);
  std::sort(Keys.begin(), Keys.end());
  for (const auto &K : Keys)
    Visit(K, M.at(K));
}

} // namespace

void BasicVelodrome::serialize(SnapshotWriter &W) const {
  serializeBase(W);
  W.u64(Nodes.size());
  for (const Node &N : Nodes) {
    W.u32(N.Owner);
    W.u32(N.Root);
    W.u64(N.Out.size());
    for (uint32_t Succ : N.Out)
      W.u32(Succ);
  }
  auto WriteU32Map = [&](const std::unordered_map<Tid, uint32_t> &M) {
    W.u64(M.size());
    forEachSorted(M, [&](uint32_t K, uint32_t V) {
      W.u32(K);
      W.u32(V);
    });
  };
  WriteU32Map(Current);
  W.u64(Depth.size());
  forEachSorted(Depth, [&](Tid T, int D) {
    W.u32(T);
    W.u64(static_cast<uint64_t>(D));
  });
  WriteU32Map(LastTxn);
  WriteU32Map(Unlock);
  WriteU32Map(LastWr);
  W.u64(LastRd.size());
  forEachSorted(LastRd, [&](VarId X, const std::map<Tid, uint32_t> &Rd) {
    W.u32(X);
    W.u64(Rd.size());
    for (const auto &[T, N] : Rd) {
      W.u32(T);
      W.u32(N);
    }
  });
  W.u64(ViolationCount);
  W.u64(Flagged.size());
  for (Label L : Flagged)
    W.u32(L);
}

bool BasicVelodrome::deserialize(SnapshotReader &R) {
  if (!deserializeBase(R))
    return false;
  uint64_t NumNodes = R.u64();
  for (uint64_t I = 0; I < NumNodes && !R.failed(); ++I) {
    Node N;
    N.Owner = R.u32();
    N.Root = R.u32();
    uint64_t NumOut = R.u64();
    for (uint64_t J = 0; J < NumOut && !R.failed(); ++J)
      N.Out.push_back(R.u32());
    Nodes.push_back(std::move(N));
  }
  auto ReadU32Map = [&](std::unordered_map<Tid, uint32_t> &M) {
    uint64_t N = R.u64();
    for (uint64_t I = 0; I < N && !R.failed(); ++I) {
      uint32_t K = R.u32();
      M[K] = R.u32();
    }
  };
  ReadU32Map(Current);
  uint64_t NumDepth = R.u64();
  for (uint64_t I = 0; I < NumDepth && !R.failed(); ++I) {
    Tid T = R.u32();
    Depth[T] = static_cast<int>(R.u64());
  }
  ReadU32Map(LastTxn);
  ReadU32Map(Unlock);
  ReadU32Map(LastWr);
  uint64_t NumRdVars = R.u64();
  for (uint64_t I = 0; I < NumRdVars && !R.failed(); ++I) {
    VarId X = R.u32();
    uint64_t N = R.u64();
    std::map<Tid, uint32_t> &Rd = LastRd[X];
    for (uint64_t J = 0; J < N && !R.failed(); ++J) {
      Tid T = R.u32();
      Rd[T] = R.u32();
    }
  }
  ViolationCount = R.u64();
  uint64_t NumFlagged = R.u64();
  for (uint64_t I = 0; I < NumFlagged && !R.failed(); ++I)
    Flagged.insert(R.u32());
  return !R.failed();
}

} // namespace velo
