//===- core/HbGraph.cpp - Transactional happens-before graph --------------===//

#include "core/HbGraph.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace velo {

Step HbGraph::freshStamp(NodeId Slot) {
  Node &N = Slots[Slot];
  assert(N.InUse && "stamp requested on a free slot");
  return Step::make(Slot, ++N.CurStamp);
}

Step HbGraph::allocNode(Tid Owner, Label Root, bool Active) {
  NodeId Slot;
  if (!FreeList.empty()) {
    Slot = FreeList.back();
    FreeList.pop_back();
  } else {
    if (Slots.size() >= Step::MaxSlots) {
      // The GC keeps at most a few dozen nodes live (Table 1) on typical
      // workloads, but an adversarial schedule (e.g. one open transaction
      // observed by tens of thousands of threads) can pin every slot.
      // Surface that as a recoverable GraphFull condition: the caller sees
      // bottom and degrades (governor fallback / Unknown verdict) instead
      // of the process dying.
      if (!Full)
        std::fprintf(stderr, "velodrome: node slot space exhausted; "
                             "graph analysis degraded\n");
      Full = true;
      return Step::bottom();
    }
    Slot = static_cast<NodeId>(Slots.size());
    Slots.emplace_back();
  }
  Node &N = Slots[Slot];
  assert(!N.InUse && "allocating an in-use slot");
  N.InUse = true;
  N.Active = Active;
  N.RefCount = Active ? 1 : 0; // the C-stack reference while open
  N.Owner = Owner;
  N.Root = Root;
  assert(N.Out.empty() && N.Ancestors.empty() && "slot not cleaned");

  ++NumAllocated;
  Alive.inc();
  return freshStamp(Slot);
}

Step HbGraph::tick(Step S) {
  if (S.isBottom() || !isLive(S))
    return Step::bottom();
  return freshStamp(S.slot());
}

bool HbGraph::isLive(Step S) const {
  if (S.isBottom())
    return false;
  NodeId Slot = S.slot();
  assert(Slot < Slots.size() && "step references an unknown slot");
  // Timestamps within a slot are monotone across recycling, so a stamp at or
  // below the collection watermark belongs to a collected incarnation.
  return S.stamp() > Slots[Slot].StaleAtOrBelow;
}

bool HbGraph::happensBeforeEq(NodeId A, NodeId B) const {
  return A == B || Slots[B].Ancestors.contains(A);
}

void HbGraph::buildCycleReport(NodeId From, NodeId To, const HbEdge &Closing,
                               CycleReport &Out) const {
  // Find a path From => To in the acyclic live graph by DFS; the closing
  // edge To -> From (already rejected) completes the cycle.
  struct Frame {
    NodeId Node;
    size_t NextEdge;
  };
  std::vector<Frame> Stack;
  FlatSet<NodeId> Visited;
  Stack.push_back({From, 0});
  Visited.insert(From);
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Node == To)
      break;
    const Node &N = Slots[F.Node];
    if (F.NextEdge >= N.Out.size()) {
      Stack.pop_back();
      continue;
    }
    const HbEdge &E = N.Out[F.NextEdge++];
    // Only traverse toward nodes that can reach To (ancestor pruning keeps
    // this linear in the cycle length for typical graphs).
    if (!Visited.contains(E.Dst) &&
        (E.Dst == To || Slots[To].Ancestors.contains(E.Dst))) {
      Visited.insert(E.Dst);
      Stack.push_back({E.Dst, 0});
    }
  }
  assert(!Stack.empty() && "cycle path must exist when ancestors say so");

  Out.Entries.clear();
  for (size_t I = 0; I < Stack.size(); ++I) {
    const Node &N = Slots[Stack[I].Node];
    CycleEntry Entry;
    Entry.Node = Stack[I].Node;
    Entry.Owner = N.Owner;
    Entry.Root = N.Root;
    // The edge leaving this node: for interior nodes it is the path edge
    // just taken (NextEdge - 1); for the last node it is the closing edge.
    if (I + 1 < Stack.size())
      Entry.OutEdge = N.Out[Stack[I].NextEdge - 1];
    else
      Entry.OutEdge = Closing;
    Out.Entries.push_back(Entry);
  }

  // Increasing-cycle test (Section 4.3): at every node except the blamed
  // first one, the incoming timestamp must be <= the outgoing timestamp.
  Out.Increasing = true;
  for (size_t I = 1; I < Out.Entries.size(); ++I) {
    uint64_t InStamp = Out.Entries[I - 1].OutEdge.HeadStamp;
    uint64_t OutStamp = Out.Entries[I].OutEdge.TailStamp;
    if (InStamp > OutStamp) {
      Out.Increasing = false;
      break;
    }
  }
  Out.RootStamp = Out.Entries.front().OutEdge.TailStamp;
  Out.TargetStamp = Closing.HeadStamp;
}

HbGraph::AddEdgeResult HbGraph::addEdge(Step From, Step To,
                                        const EdgeInfo &Info,
                                        CycleReport *CycleOut) {
  From = resolve(From);
  if (From.isBottom())
    return AddEdgeResult::Skipped;
  assert(isLive(To) && "edge head must be a live step");

  NodeId A = From.slot(), B = To.slot();
  if (A == B)
    return AddEdgeResult::Skipped; // intra-transaction; filtered by (+)

  // The edge A -> B closes a cycle iff B already reaches A.
  if (Slots[A].Ancestors.contains(B)) {
    if (CycleOut) {
      HbEdge Closing;
      Closing.Dst = B;
      Closing.TailStamp = From.stamp();
      Closing.HeadStamp = To.stamp();
      Closing.Info = Info;
      buildCycleReport(B, A, Closing, *CycleOut);
    }
    return AddEdgeResult::Cycle;
  }

  // At most one edge per node pair: refresh stamps on re-addition.
  for (HbEdge &E : Slots[A].Out) {
    if (E.Dst == B) {
      E.TailStamp = From.stamp();
      E.HeadStamp = To.stamp();
      E.Info = Info;
      return AddEdgeResult::Added;
    }
  }

  HbEdge E;
  E.Dst = B;
  E.TailStamp = From.stamp();
  E.HeadStamp = To.stamp();
  E.Info = Info;
  Slots[A].Out.push_back(E);
  ++NumEdges;
  ++Slots[B].RefCount;

  // Propagate ancestors: B and all its descendants gain Ancestors(A)+{A}.
  // Pruning on "did not grow" is sound because ancestor sets are closed
  // (child's set always contains parent's set plus the parent).
  FlatSet<NodeId> Gain = Slots[A].Ancestors;
  Gain.insert(A);
  std::vector<NodeId> Work{B};
  while (!Work.empty()) {
    NodeId X = Work.back();
    Work.pop_back();
    if (!Slots[X].Ancestors.unionWith(Gain))
      continue;
    for (const HbEdge &Succ : Slots[X].Out)
      Work.push_back(Succ.Dst);
  }
  return AddEdgeResult::Added;
}

void HbGraph::finishNode(NodeId Slot) {
  Node &N = Slots[Slot];
  assert(N.InUse && N.Active && "finishing a non-open node");
  N.Active = false;
  assert(N.RefCount > 0 && "open node must hold its own reference");
  if (--N.RefCount == 0)
    collect(Slot);
}

void HbGraph::collect(NodeId Slot) {
  std::vector<NodeId> Work{Slot};
  while (!Work.empty()) {
    NodeId S = Work.back();
    Work.pop_back();
    Node &N = Slots[S];
    assert(N.InUse && !N.Active && N.RefCount == 0 && "collecting live node");

    // Remove S from the ancestor sets of everything it reaches. Because S
    // has no incoming edges, no other node's ancestry passes through S, so
    // erasing S itself is the only repair needed.
    {
      FlatSet<NodeId> Visited;
      std::vector<NodeId> Dfs;
      for (const HbEdge &E : N.Out)
        Dfs.push_back(E.Dst);
      while (!Dfs.empty()) {
        NodeId X = Dfs.back();
        Dfs.pop_back();
        if (!Visited.insert(X))
          continue;
        Slots[X].Ancestors.erase(S);
        for (const HbEdge &E : Slots[X].Out)
          Dfs.push_back(E.Dst);
      }
    }

    // Drop outgoing edges; successors whose last reference this was are
    // collected in cascade.
    for (const HbEdge &E : N.Out) {
      Node &Dst = Slots[E.Dst];
      assert(Dst.RefCount > 0 && "edge refcount underflow");
      if (--Dst.RefCount == 0 && !Dst.Active)
        Work.push_back(E.Dst);
    }

    N.Out.clear();
    N.Ancestors.clear();
    N.StaleAtOrBelow = N.CurStamp; // stale-step watermark
    N.InUse = false;
    FreeList.push_back(S);
    Alive.dec();
  }
}

Step HbGraph::merge(const std::vector<Step> &Inputs, Tid Owner,
                    const EdgeInfo &Info) {
  // Resolve and deduplicate by slot (keeping the latest stamp per slot).
  std::vector<Step> Live;
  for (Step S : Inputs) {
    S = resolve(S);
    if (S.isBottom())
      continue;
    bool Dup = false;
    for (Step &Existing : Live) {
      if (Existing.slot() == S.slot()) {
        if (S.stamp() > Existing.stamp())
          Existing = S;
        Dup = true;
        break;
      }
    }
    if (!Dup)
      Live.push_back(S);
  }

  if (Live.empty())
    return Step::bottom();

  // A representative must be a *finished* node that every other input
  // happens-before-or-equals. (Reusing a still-open transaction node would
  // merge the unary operation into a transaction that can still perform
  // conflicting operations after it, hiding two-node cycles; see DESIGN.md.)
  for (const Step &Cand : Live) {
    if (Slots[Cand.slot()].Active)
      continue;
    bool Dominates = true;
    for (const Step &Other : Live) {
      if (!happensBeforeEq(Other.slot(), Cand.slot())) {
        Dominates = false;
        break;
      }
    }
    if (Dominates) {
      ++NumMerged;
      return Cand;
    }
  }

  // Otherwise: a fresh unary node, born finished, fed by every live input.
  Step Fresh = allocNode(Owner, NoLabel, /*Active=*/false);
  if (Fresh.isBottom()) // GraphFull: no slot for the merge node
    return Step::bottom();
  for (const Step &S : Live) {
    AddEdgeResult R = addEdge(S, Fresh, Info, nullptr);
    (void)R;
    assert(R == AddEdgeResult::Added && "fresh node cannot close a cycle");
  }
  return Fresh;
}

void HbGraph::clear() {
  Slots.clear();
  FreeList.clear();
  NumAllocated = NumEdges = NumMerged = 0;
  Alive = HighWater();
  Full = false;
}

void HbGraph::serialize(SnapshotWriter &W) const {
  W.u64(Slots.size());
  for (const Node &N : Slots) {
    W.boolean(N.InUse);
    W.boolean(N.Active);
    W.u32(N.RefCount);
    W.u32(N.Owner);
    W.u32(N.Root);
    W.u64(N.CurStamp);
    W.u64(N.StaleAtOrBelow);
    W.u64(N.Out.size());
    for (const HbEdge &E : N.Out) {
      W.u32(E.Dst);
      W.u64(E.TailStamp);
      W.u64(E.HeadStamp);
      W.u8(static_cast<uint8_t>(E.Info.Kind));
      W.u32(E.Info.Target);
      W.u32(E.Info.Thread);
    }
    W.u64(N.Ancestors.size());
    for (NodeId A : N.Ancestors)
      W.u32(A);
  }
  W.u64(FreeList.size());
  for (NodeId S : FreeList)
    W.u32(S);
  W.u64(NumAllocated);
  W.u64(NumEdges);
  W.u64(NumMerged);
  W.u64(Alive.current());
  W.u64(Alive.peak());
  W.boolean(Full);
}

bool HbGraph::deserialize(SnapshotReader &R) {
  clear();
  uint64_t NumSlots = R.u64();
  if (R.failed() || NumSlots > Step::MaxSlots)
    return false;
  Slots.resize(NumSlots);
  for (Node &N : Slots) {
    N.InUse = R.boolean();
    N.Active = R.boolean();
    N.RefCount = R.u32();
    N.Owner = R.u32();
    N.Root = R.u32();
    N.CurStamp = R.u64();
    N.StaleAtOrBelow = R.u64();
    uint64_t NumOut = R.u64();
    if (R.failed())
      return false;
    N.Out.reserve(NumOut);
    for (uint64_t I = 0; I < NumOut && !R.failed(); ++I) {
      HbEdge E;
      E.Dst = R.u32();
      E.TailStamp = R.u64();
      E.HeadStamp = R.u64();
      E.Info.Kind = static_cast<Op>(R.u8());
      E.Info.Target = R.u32();
      E.Info.Thread = R.u32();
      if (E.Dst >= NumSlots)
        return false;
      N.Out.push_back(E);
    }
    uint64_t NumAnc = R.u64();
    if (R.failed())
      return false;
    for (uint64_t I = 0; I < NumAnc && !R.failed(); ++I) {
      NodeId A = R.u32();
      if (A >= NumSlots)
        return false;
      N.Ancestors.insert(A);
    }
  }
  uint64_t NumFree = R.u64();
  if (R.failed() || NumFree > NumSlots)
    return false;
  FreeList.reserve(NumFree);
  for (uint64_t I = 0; I < NumFree && !R.failed(); ++I) {
    NodeId S = R.u32();
    if (S >= NumSlots)
      return false;
    FreeList.push_back(S);
  }
  NumAllocated = R.u64();
  NumEdges = R.u64();
  NumMerged = R.u64();
  uint64_t Cur = R.u64();
  uint64_t Peak = R.u64();
  Alive.restore(Cur, Peak);
  Full = R.boolean();
  return !R.failed();
}

} // namespace velo
