//===- report/Report.h - Centralized structured report manager --*- C++ -*-===//
//
// Every tool's findings flow into one ReportManager, which renders the
// final document in one of three formats (docs/REPORTING.md):
//
//   * text  — the historical human report, byte-identical to what the
//             tools printed before structured reporting existed, so every
//             differential/identity gate keeps holding.
//   * json  — a stable, versioned machine schema (--format=json).
//   * sarif — SARIF 2.1.0 with rule metadata, locations at sanitized
//             event ordinals, and relatedLocations for cycle edges
//             (--format=sarif).
//
// Ingestion resolves symbol ids to names immediately, so a manager can be
// rendered after the symbol table is gone. Renderers are deterministic:
// the same findings produce the same bytes, which is what the golden
// fixtures under tests/data/report assert across {text,.vtrc} x
// {sequential,--parallel} x {plain,--reduce} x resume.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_REPORT_REPORT_H
#define VELO_REPORT_REPORT_H

#include "analysis/Backend.h"
#include "report/Rules.h"

#include <cstdint>
#include <string>
#include <vector>

namespace velo {

/// Output format selector shared by every tool's --format= flag.
enum class ReportFormat { Text, Json, Sarif };

/// Parse "text"/"json"/"sarif". Returns false on anything else.
bool parseReportFormat(const std::string &V, ReportFormat &Out);

/// Run-level metadata rendered into the document header.
struct RunInfo {
  std::string Tool;  ///< "velodrome-check", "velodrome-analyze", ...
  std::string Trace; ///< Input path exactly as the text header prints it.
  uint64_t Events = 0; ///< Events delivered to the back-ends (text header).
  /// Events ingested after sanitization but before reduction — the
  /// coordinate space of Warning::Ordinal. Identical across plain and
  /// --reduce runs, which keeps JSON/SARIF byte-stable under reduction
  /// (the text header keeps printing the delivered count above).
  uint64_t SanitizedEvents = 0;
  uint32_t Threads = 0;
  std::string Verdict; ///< Verdict-line text ("" = tool has no verdict).
  int ExitCode = 0;
};

/// One finding, fully resolved (names, rule metadata) at ingestion time.
struct Finding {
  const RuleInfo *Rule = nullptr; ///< Never null after ingestion.
  std::string Backend;  ///< Reporting back-end display name ("Velodrome").
  std::string Analysis; ///< Warning::Analysis.
  std::string Category; ///< Warning::Category.
  std::string Method;   ///< Resolved blamed-method name ("" = none).
  std::string Message;  ///< Human-readable text (one per warning).
  uint32_t Thread = 0;
  uint64_t Ordinal = 0; ///< Sanitized-stream event ordinal (0 = unknown).
  struct Site {
    std::string Method;
    std::string Note;
    uint32_t Thread = 0;
    uint64_t Ordinal = 0;
  };
  std::vector<Site> Related;
};

/// Collects findings and run metadata; renders text, JSON, or SARIF.
class ReportManager {
public:
  RunInfo Run;

  /// Shared MaxWarnings cap, hoisted out of the individual checkers so the
  /// cap counts findings uniformly: true when Emitted findings have
  /// reached Max. Max == 0 means unlimited everywhere.
  static bool capReached(size_t Emitted, size_t Max) {
    return Max != 0 && Emitted >= Max;
  }

  /// Ingest one reporting back-end's warning list as a section. Sections
  /// render in ingestion order; Syms may be null (ids render as numbers).
  void addSection(const std::string &BackendName,
                  const std::vector<Warning> &Warnings,
                  const SymbolTable *Syms);

  /// Ingest a single already-built warning into the most recent section
  /// (or a fresh unnamed section when none exists).
  void addWarning(const std::string &BackendName, const Warning &W,
                  const SymbolTable *Syms);

  /// Stats line for the text renderer ("[graph] ...", "[reduce] ...");
  /// no trailing newline.
  void addStatLine(std::string Line) { StatLines.push_back(std::move(Line)); }

  /// Verbatim text appended after the stats lines and before the verdict
  /// (dot-file note, witness block). The caller includes its newlines.
  void addNote(std::string Text) { Notes.push_back(std::move(Text)); }

  /// The historical human report. With Quiet, the header, sections, and
  /// stats are suppressed; notes and the verdict line still print —
  /// exactly the bytes the tools printed before this class existed.
  std::string renderText(bool Quiet = false) const;

  /// Stable machine schema, schemaVersion 1 (docs/REPORTING.md).
  std::string renderJson() const;

  /// SARIF 2.1.0 document.
  std::string renderSarif() const;

  /// Render in the requested format (text ignores Quiet=false callers).
  std::string render(ReportFormat F, bool Quiet = false) const;

  const std::vector<Finding> &findings() const { return Findings; }

  /// Findings whose rule default severity is "error" or "warning" —
  /// velodrome-analyze's exit-1 condition (docs/INGESTION.md exit table).
  size_t actionableFindings() const;

private:
  struct Section {
    std::string Backend;
    size_t FirstFinding = 0;
    size_t NumFindings = 0;
  };

  void writeFindingJson(class JsonWriter &J, const Finding &F) const;

  std::vector<Section> Sections;
  std::vector<Finding> Findings;
  std::vector<std::string> StatLines;
  std::vector<std::string> Notes;
};

} // namespace velo

#endif // VELO_REPORT_REPORT_H
