//===- report/Report.cpp - Centralized structured report manager ----------===//

#include "report/Report.h"

#include "report/Json.h"

#include <cstdio>

namespace velo {

bool parseReportFormat(const std::string &V, ReportFormat &Out) {
  if (V == "text") {
    Out = ReportFormat::Text;
  } else if (V == "json") {
    Out = ReportFormat::Json;
  } else if (V == "sarif") {
    Out = ReportFormat::Sarif;
  } else {
    return false;
  }
  return true;
}

namespace {

// The one fallback rule for a warning whose emitter registered nothing:
// metadata good enough to keep the renderers total.
const RuleInfo UnknownRule = {"VELO-UNKNOWN", "UnregisteredFinding",
                              "Finding from a back-end without a registered "
                              "rule id",
                              "CWE-662", "warning"};

const RuleInfo *resolveRule(const Warning &W) {
  if (!W.RuleId.empty())
    if (const RuleInfo *R = findRule(W.RuleId))
      return R;
  const char *Derived = ruleForWarning(W.Analysis, W.Category);
  if (const RuleInfo *R = findRule(Derived))
    return R;
  return &UnknownRule;
}

std::string methodName(Label L, const SymbolTable *Syms) {
  if (L == NoLabel)
    return std::string();
  return Syms ? Syms->labelName(L) : std::to_string(L);
}

} // namespace

void ReportManager::addSection(const std::string &BackendName,
                               const std::vector<Warning> &Warnings,
                               const SymbolTable *Syms) {
  Section S;
  S.Backend = BackendName;
  S.FirstFinding = Findings.size();
  Sections.push_back(std::move(S));
  for (const Warning &W : Warnings)
    addWarning(BackendName, W, Syms);
}

void ReportManager::addWarning(const std::string &BackendName,
                               const Warning &W, const SymbolTable *Syms) {
  if (Sections.empty() || Sections.back().Backend != BackendName) {
    Section S;
    S.Backend = BackendName;
    S.FirstFinding = Findings.size();
    Sections.push_back(std::move(S));
  }
  Finding F;
  F.Rule = resolveRule(W);
  F.Backend = BackendName;
  F.Analysis = W.Analysis;
  F.Category = W.Category;
  F.Method = methodName(W.Method, Syms);
  F.Message = W.Message;
  F.Thread = W.Thread;
  F.Ordinal = W.Ordinal;
  for (const WarningSite &Site : W.Related) {
    Finding::Site S;
    S.Method = methodName(Site.Method, Syms);
    S.Note = Site.Note;
    S.Thread = Site.Thread;
    S.Ordinal = Site.Ordinal;
    F.Related.push_back(std::move(S));
  }
  Findings.push_back(std::move(F));
  ++Sections.back().NumFindings;
}

size_t ReportManager::actionableFindings() const {
  size_t N = 0;
  for (const Finding &F : Findings) {
    const std::string Level = F.Rule->Level;
    if (Level == "error" || Level == "warning")
      ++N;
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Text renderer: the historical report, byte for byte.
//===----------------------------------------------------------------------===//

std::string ReportManager::renderText(bool Quiet) const {
  std::string Out;
  char Buf[512];
  if (!Quiet) {
    std::snprintf(Buf, sizeof(Buf), "%s: %llu events, %u threads\n",
                  Run.Trace.c_str(),
                  static_cast<unsigned long long>(Run.Events), Run.Threads);
    Out += Buf;
    for (const Section &S : Sections) {
      std::snprintf(Buf, sizeof(Buf), "[%s] %zu warning(s)\n",
                    S.Backend.c_str(), S.NumFindings);
      Out += Buf;
      for (size_t I = 0; I < S.NumFindings; ++I) {
        Out += "  ";
        Out += Findings[S.FirstFinding + I].Message;
        Out += '\n';
      }
    }
    for (const std::string &Line : StatLines) {
      Out += Line;
      Out += '\n';
    }
  }
  for (const std::string &Note : Notes)
    Out += Note;
  if (!Run.Verdict.empty()) {
    Out += "verdict: ";
    Out += Run.Verdict;
    Out += '\n';
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON renderer: schemaVersion 1 (docs/REPORTING.md).
//===----------------------------------------------------------------------===//

void ReportManager::writeFindingJson(JsonWriter &J, const Finding &F) const {
  J.beginObject();
  J.key("ruleId");
  J.str(F.Rule->Id);
  J.key("ruleName");
  J.str(F.Rule->Name);
  J.key("cwe");
  J.str(F.Rule->Cwe);
  J.key("severity");
  J.str(F.Rule->Level);
  J.key("backend");
  J.str(F.Backend);
  J.key("analysis");
  J.str(F.Analysis);
  J.key("category");
  J.str(F.Category);
  if (!F.Method.empty()) {
    J.key("method");
    J.str(F.Method);
  }
  J.key("thread");
  J.num(static_cast<uint64_t>(F.Thread));
  if (F.Ordinal != 0) {
    J.key("ordinal");
    J.num(F.Ordinal);
  }
  J.key("message");
  J.str(F.Message);
  if (!F.Related.empty()) {
    J.key("related");
    J.beginArray();
    for (const Finding::Site &S : F.Related) {
      J.beginObject();
      J.key("thread");
      J.num(static_cast<uint64_t>(S.Thread));
      if (S.Ordinal != 0) {
        J.key("ordinal");
        J.num(S.Ordinal);
      }
      if (!S.Method.empty()) {
        J.key("method");
        J.str(S.Method);
      }
      if (!S.Note.empty()) {
        J.key("note");
        J.str(S.Note);
      }
      J.endObject();
    }
    J.endArray();
  }
  J.endObject();
}

std::string ReportManager::renderJson() const {
  JsonWriter J;
  J.beginObject();
  J.key("schema");
  J.str("velodrome-report");
  J.key("schemaVersion");
  J.num(1);
  J.key("tool");
  J.str(Run.Tool);
  J.key("trace");
  J.str(Run.Trace);
  J.key("events");
  J.num(Run.SanitizedEvents);
  J.key("threads");
  J.num(static_cast<uint64_t>(Run.Threads));
  if (!Run.Verdict.empty()) {
    J.key("verdict");
    J.str(Run.Verdict);
  }
  J.key("exitCode");
  J.num(Run.ExitCode);
  J.key("findings");
  J.beginArray();
  for (const Finding &F : Findings)
    writeFindingJson(J, F);
  J.endArray();
  J.endObject();
  return J.take();
}

//===----------------------------------------------------------------------===//
// SARIF 2.1.0 renderer. Location convention (docs/REPORTING.md): the
// artifact is the trace file and region.startLine is the finding's
// sanitized-stream event ordinal — the line the event occupies in the
// canonical text rendering of the trace, whatever the input container
// was. Cycle edges and witnesses become relatedLocations.
//===----------------------------------------------------------------------===//

std::string ReportManager::renderSarif() const {
  JsonWriter J;
  J.beginObject();
  J.key("$schema");
  J.str("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json");
  J.key("version");
  J.str("2.1.0");
  J.key("runs");
  J.beginArray();
  J.beginObject();

  J.key("tool");
  J.beginObject();
  J.key("driver");
  J.beginObject();
  J.key("name");
  J.str(Run.Tool.empty() ? std::string("velodrome") : Run.Tool);
  J.key("informationUri");
  J.str("https://github.com/velodrome/velodrome");
  J.key("version");
  J.str("1.0.0");
  J.key("rules");
  J.beginArray();
  size_t NumRules = 0;
  const RuleInfo *Rules = ruleTable(NumRules);
  for (size_t I = 0; I < NumRules; ++I) {
    J.beginObject();
    J.key("id");
    J.str(Rules[I].Id);
    J.key("name");
    J.str(Rules[I].Name);
    J.key("shortDescription");
    J.beginObject();
    J.key("text");
    J.str(Rules[I].Summary);
    J.endObject();
    J.key("defaultConfiguration");
    J.beginObject();
    J.key("level");
    J.str(Rules[I].Level);
    J.endObject();
    J.key("properties");
    J.beginObject();
    J.key("cwe");
    J.str(Rules[I].Cwe);
    J.endObject();
    J.endObject();
  }
  J.endArray();
  J.endObject(); // driver
  J.endObject(); // tool

  J.key("invocations");
  J.beginArray();
  J.beginObject();
  J.key("executionSuccessful");
  J.boolean(true);
  J.key("exitCode");
  J.num(Run.ExitCode);
  J.endObject();
  J.endArray();

  J.key("artifacts");
  J.beginArray();
  J.beginObject();
  J.key("location");
  J.beginObject();
  J.key("uri");
  J.str(Run.Trace);
  J.endObject();
  J.endObject();
  J.endArray();

  auto WriteLocation = [&](uint32_t Thread, uint64_t Ordinal,
                           const std::string &Method,
                           const std::string &MessageText) {
    J.beginObject();
    if (!MessageText.empty()) {
      J.key("message");
      J.beginObject();
      J.key("text");
      J.str(MessageText);
      J.endObject();
    }
    J.key("physicalLocation");
    J.beginObject();
    J.key("artifactLocation");
    J.beginObject();
    J.key("uri");
    J.str(Run.Trace);
    J.key("index");
    J.num(0);
    J.endObject();
    if (Ordinal != 0) {
      J.key("region");
      J.beginObject();
      J.key("startLine");
      J.num(Ordinal);
      J.endObject();
    }
    J.endObject();
    J.key("logicalLocations");
    J.beginArray();
    J.beginObject();
    if (!Method.empty()) {
      J.key("name");
      J.str(Method);
      J.key("kind");
      J.str("function");
    } else {
      J.key("name");
      J.str("T" + std::to_string(Thread));
      J.key("kind");
      J.str("thread");
    }
    J.endObject();
    J.endArray();
    J.endObject();
  };

  J.key("results");
  J.beginArray();
  for (const Finding &F : Findings) {
    J.beginObject();
    J.key("ruleId");
    J.str(F.Rule->Id);
    int Idx = ruleIndex(F.Rule->Id);
    if (Idx >= 0) {
      J.key("ruleIndex");
      J.num(Idx);
    }
    J.key("level");
    J.str(F.Rule->Level);
    J.key("message");
    J.beginObject();
    J.key("text");
    J.str(F.Message);
    J.endObject();
    J.key("locations");
    J.beginArray();
    WriteLocation(F.Thread, F.Ordinal, F.Method, std::string());
    J.endArray();
    if (!F.Related.empty()) {
      J.key("relatedLocations");
      J.beginArray();
      for (const Finding::Site &S : F.Related)
        WriteLocation(S.Thread, S.Ordinal, S.Method, S.Note);
      J.endArray();
    }
    J.key("properties");
    J.beginObject();
    J.key("thread");
    J.num(static_cast<uint64_t>(F.Thread));
    J.key("backend");
    J.str(F.Backend);
    J.key("cwe");
    J.str(F.Rule->Cwe);
    J.endObject();
    J.endObject();
  }
  J.endArray();

  J.key("columnKind");
  J.str("utf16CodeUnits");
  J.endObject(); // run
  J.endArray();  // runs
  J.endObject();
  return J.take();
}

std::string ReportManager::render(ReportFormat F, bool Quiet) const {
  switch (F) {
  case ReportFormat::Json:
    return renderJson();
  case ReportFormat::Sarif:
    return renderSarif();
  case ReportFormat::Text:
    break;
  }
  return renderText(Quiet);
}

} // namespace velo
