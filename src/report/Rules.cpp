//===- report/Rules.cpp - Stable finding rule registry --------------------===//

#include "report/Rules.h"

#include <cstring>

namespace velo {

namespace {

// Append-only. Adding a rule is safe; renumbering or reusing an id is not
// (docs/REPORTING.md "Rule-id registry").
const RuleInfo Rules[] = {
    {"VELO-ATOM-001", "AtomicityCycle",
     "A transactional happens-before cycle proves an atomic block is not "
     "conflict-serializable",
     "CWE-366", "error"},
    {"VELO-ATOM-002", "AeroAtomicityCycle",
     "A clock-based dependency cycle closes through an atomic block "
     "(AeroDrome single-pass check)",
     "CWE-366", "error"},
    {"VELO-ATOM-003", "AtomizerNonMover",
     "An atomic block performs a non-mover sequence the Atomizer's "
     "reduction argument cannot commute",
     "CWE-366", "warning"},
    {"VELO-ATOM-004", "StrictTwoPhaseLocking",
     "An atomic block breaks the strict two-phase locking discipline",
     "CWE-366", "warning"},
    {"VELO-RACE-001", "HappensBeforeRace",
     "Two conflicting accesses are unordered by the happens-before "
     "relation",
     "CWE-362", "error"},
    {"VELO-RACE-002", "EraserLocksetRace",
     "A write-shared variable's candidate lockset is empty (Eraser "
     "discipline violation)",
     "CWE-362", "warning"},
    {"VELO-DLK-001", "LockOrderCycle",
     "Nested lock acquisitions form an order-graph cycle that can "
     "deadlock",
     "CWE-833", "warning"},
    {"VELO-LINT-001", "RacyVariable",
     "A shared variable is accessed with an empty candidate lockset "
     "(offline lock-discipline lint)",
     "CWE-362", "warning"},
    {"VELO-LINT-002", "InconsistentGuard",
     "A shared variable is guarded by different locks on different "
     "accesses",
     "CWE-662", "warning"},
};

constexpr size_t NumRules = sizeof(Rules) / sizeof(Rules[0]);

} // namespace

const RuleInfo *ruleTable(size_t &CountOut) {
  CountOut = NumRules;
  return Rules;
}

const RuleInfo *findRule(const std::string &Id) {
  for (const RuleInfo &R : Rules)
    if (Id == R.Id)
      return &R;
  return nullptr;
}

int ruleIndex(const std::string &Id) {
  for (size_t I = 0; I < NumRules; ++I)
    if (Id == Rules[I].Id)
      return static_cast<int>(I);
  return -1;
}

const char *ruleForWarning(const std::string &Analysis,
                           const std::string &Category) {
  if (Analysis == "velodrome" || Analysis == "basic")
    return "VELO-ATOM-001";
  if (Analysis == "aerodrome")
    return "VELO-ATOM-002";
  if (Analysis == "atomizer")
    return "VELO-ATOM-003";
  if (Analysis == "strict2pl")
    return "VELO-ATOM-004";
  if (Analysis == "hb")
    return "VELO-RACE-001";
  if (Analysis == "eraser")
    return "VELO-RACE-002";
  if (Analysis == "deadlock")
    return "VELO-DLK-001";
  if (Category == "race")
    return "VELO-RACE-001";
  if (Category == "atomicity")
    return "VELO-ATOM-001";
  if (Category == "deadlock")
    return "VELO-DLK-001";
  return "";
}

} // namespace velo
