//===- report/Rules.h - Stable finding rule registry ------------*- C++ -*-===//
//
// Every checker finding carries a stable rule id (docs/REPORTING.md). The
// registry is the single source of truth for the id -> metadata mapping:
// human name, one-line summary, CWE tag, and default severity. Rule ids
// are append-only — an id, once published, never changes meaning — and the
// registry order is the order rules appear in SARIF `tool.driver.rules`,
// so renderer output is byte-stable across runs.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_REPORT_RULES_H
#define VELO_REPORT_RULES_H

#include <cstddef>
#include <string>

namespace velo {

/// Metadata for one stable rule id.
struct RuleInfo {
  const char *Id;      ///< "VELO-ATOM-001" — stable, append-only.
  const char *Name;    ///< SARIF rule name ("AtomicityCycle").
  const char *Summary; ///< One-line shortDescription.
  const char *Cwe;     ///< "CWE-366" — closest CWE classification.
  const char *Level;   ///< Default severity: "error", "warning", "note".
};

/// All registered rules, in registry (= SARIF rules array) order.
const RuleInfo *ruleTable(size_t &CountOut);

/// Look up a rule by id. Returns null for an unknown id.
const RuleInfo *findRule(const std::string &Id);

/// Index of Id in the registry (SARIF ruleIndex), or -1 when unknown.
int ruleIndex(const std::string &Id);

/// Rule id for a warning that predates structured reporting, derived from
/// its (Analysis, Category) pair. Returns "" when no rule matches.
const char *ruleForWarning(const std::string &Analysis,
                           const std::string &Category);

} // namespace velo

#endif // VELO_REPORT_RULES_H
