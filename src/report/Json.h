//===- report/Json.h - Deterministic JSON writer ----------------*- C++ -*-===//
//
// A minimal streaming JSON emitter for the report renderers. Output is
// fully deterministic — keys appear exactly in the order the caller emits
// them, numbers are plain decimal, and strings are escaped the same way
// every time — which is what makes golden-fixture byte-identity tests
// possible. No parsing, no DOM; the renderers never need either.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_REPORT_JSON_H
#define VELO_REPORT_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace velo {

/// Escape S for inclusion in a JSON string literal (no quotes added).
std::string jsonEscape(const std::string &S);

/// Streaming JSON writer with automatic comma placement. The caller is
/// responsible for balanced begin/end calls; key() must precede every
/// value inside an object.
class JsonWriter {
public:
  /// Pretty printing: two-space indent, one key or element per line —
  /// stable bytes, pleasant diffs. Compact: no whitespace at all.
  explicit JsonWriter(bool Pretty = true) : Pretty(Pretty) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const char *K);
  void str(const std::string &V) { scalar('"' + jsonEscape(V) + '"'); }
  void num(uint64_t V) { scalar(std::to_string(V)); }
  void num(int V) { scalar(std::to_string(V)); }
  void boolean(bool V) { scalar(V ? "true" : "false"); }

  /// The finished document, newline-terminated.
  std::string take();

private:
  void open(char C);
  void close(char C);
  void scalar(const std::string &Text);
  void separate();
  void indent();

  std::string Out;
  std::vector<bool> HasItem; ///< per open container: anything emitted yet?
  bool PendingKey = false;
  bool Pretty;
};

} // namespace velo

#endif // VELO_REPORT_JSON_H
