//===- report/Json.cpp - Deterministic JSON writer ------------------------===//

#include "report/Json.h"

#include <cstdio>

namespace velo {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void JsonWriter::separate() {
  if (PendingKey)
    return; // the value follows its key on the same line
  if (!HasItem.empty()) {
    if (HasItem.back())
      Out += ',';
    HasItem.back() = true;
    if (Pretty) {
      Out += '\n';
      indent();
    }
  }
}

void JsonWriter::indent() {
  Out.append(2 * HasItem.size(), ' ');
}

void JsonWriter::key(const char *K) {
  separate();
  Out += '"';
  Out += jsonEscape(K);
  Out += Pretty ? "\": " : "\":";
  PendingKey = true;
}

void JsonWriter::open(char C) {
  separate();
  PendingKey = false;
  Out += C;
  HasItem.push_back(false);
}

void JsonWriter::close(char C) {
  bool WroteAny = !HasItem.empty() && HasItem.back();
  HasItem.pop_back();
  if (Pretty && WroteAny) {
    Out += '\n';
    indent();
  }
  Out += C;
}

void JsonWriter::scalar(const std::string &Text) {
  separate();
  PendingKey = false;
  Out += Text;
}

std::string JsonWriter::take() {
  Out += '\n';
  return std::move(Out);
}

} // namespace velo
