//===- support/DotWriter.h - Graphviz dot emission --------------*- C++ -*-===//
//
// Velodrome renders each atomicity violation as a dot graph: one box per
// transaction on the happens-before cycle, edges labeled with the inducing
// operation, the cycle-closing edge dashed, and the blamed transaction
// outlined (Section 5 of the paper). This is the small emitter behind that.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_DOTWRITER_H
#define VELO_SUPPORT_DOTWRITER_H

#include <string>
#include <vector>

namespace velo {

/// Incremental builder for a directed graph in Graphviz dot syntax.
class DotWriter {
public:
  explicit DotWriter(std::string GraphName = "G");

  /// Add a node. Extra holds raw dot attributes, e.g. "peripheries=2".
  void addNode(const std::string &Id, const std::string &Label,
               const std::string &Extra = "");

  /// Add an edge with a label; Dashed renders style=dashed (used for the
  /// cycle-closing edge in error graphs).
  void addEdge(const std::string &From, const std::string &To,
               const std::string &Label, bool Dashed = false);

  /// Render the accumulated graph as dot text.
  std::string str() const;

  /// Escape a string for use inside a double-quoted dot attribute.
  static std::string escape(const std::string &S);

private:
  std::string Name;
  std::vector<std::string> Lines;
};

} // namespace velo

#endif // VELO_SUPPORT_DOTWRITER_H
