//===- support/DotWriter.cpp - Graphviz dot emission ----------------------===//

#include "support/DotWriter.h"

namespace velo {

DotWriter::DotWriter(std::string GraphName) : Name(std::move(GraphName)) {}

std::string DotWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

void DotWriter::addNode(const std::string &Id, const std::string &Label,
                        const std::string &Extra) {
  std::string Line = "  \"" + escape(Id) + "\" [shape=box,label=\"" +
                     escape(Label) + "\"";
  if (!Extra.empty())
    Line += "," + Extra;
  Line += "];";
  Lines.push_back(std::move(Line));
}

void DotWriter::addEdge(const std::string &From, const std::string &To,
                        const std::string &Label, bool Dashed) {
  std::string Line = "  \"" + escape(From) + "\" -> \"" + escape(To) +
                     "\" [label=\"" + escape(Label) + "\"";
  if (Dashed)
    Line += ",style=dashed";
  Line += "];";
  Lines.push_back(std::move(Line));
}

std::string DotWriter::str() const {
  std::string Out = "digraph \"" + escape(Name) + "\" {\n";
  for (const std::string &Line : Lines) {
    Out += Line;
    Out += '\n';
  }
  Out += "}\n";
  return Out;
}

} // namespace velo
