//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// The benchmark harnesses print results in the same row/column layout as the
// paper's Table 1 and Table 2. This helper right-pads columns, supports
// numeric formatting ("71.7", ">1,000,000"), and can also dump CSV for
// post-processing.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_TABLEPRINTER_H
#define VELO_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <string>
#include <vector>

namespace velo {

/// Accumulates rows of string cells and renders an aligned text table.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  void startRow();

  /// Append one cell to the current row.
  void cell(std::string Value);
  void cell(int64_t Value);
  void cell(uint64_t Value);
  /// Fixed-point with Digits decimals, e.g. cell(71.66, 1) -> "71.7".
  void cell(double Value, int Digits);

  /// Render with padded, space-separated columns (two-space gutter).
  std::string str() const;

  /// Render as CSV (no quoting beyond doubling embedded quotes).
  std::string csv() const;

  /// Thousands-separated integer, e.g. 1234567 -> "1,234,567".
  static std::string withCommas(uint64_t Value);

  /// Fixed-point double formatting helper.
  static std::string fixed(double Value, int Digits);

private:
  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace velo

#endif // VELO_SUPPORT_TABLEPRINTER_H
