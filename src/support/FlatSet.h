//===- support/FlatSet.h - Sorted-vector set --------------------*- C++ -*-===//
//
// A tiny sorted-vector set used for Velodrome's per-node ancestor sets.
// The paper observes that garbage collection keeps at most a few dozen
// transaction nodes alive at any time, so ancestor sets are small and a
// contiguous sorted vector beats a hash table on every axis that matters
// here: lookup, iteration, and memory locality during the cascading updates
// performed at edge insertion and node collection.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_FLATSET_H
#define VELO_SUPPORT_FLATSET_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace velo {

/// Sorted-vector set of trivially copyable keys.
template <typename T> class FlatSet {
public:
  using const_iterator = typename std::vector<T>::const_iterator;

  /// Insert Key. Returns true if the key was newly inserted.
  bool insert(T Key) {
    auto It = std::lower_bound(Keys.begin(), Keys.end(), Key);
    if (It != Keys.end() && *It == Key)
      return false;
    Keys.insert(It, Key);
    return true;
  }

  /// Remove Key. Returns true if the key was present.
  bool erase(T Key) {
    auto It = std::lower_bound(Keys.begin(), Keys.end(), Key);
    if (It == Keys.end() || *It != Key)
      return false;
    Keys.erase(It);
    return true;
  }

  bool contains(T Key) const {
    return std::binary_search(Keys.begin(), Keys.end(), Key);
  }

  /// Set-union with another FlatSet. Returns true if this set grew.
  bool unionWith(const FlatSet &Other) {
    if (Other.empty())
      return false;
    std::vector<T> Merged;
    Merged.reserve(Keys.size() + Other.Keys.size());
    std::set_union(Keys.begin(), Keys.end(), Other.Keys.begin(),
                   Other.Keys.end(), std::back_inserter(Merged));
    bool Grew = Merged.size() != Keys.size();
    Keys = std::move(Merged);
    return Grew;
  }

  void clear() { Keys.clear(); }
  bool empty() const { return Keys.empty(); }
  size_t size() const { return Keys.size(); }

  const_iterator begin() const { return Keys.begin(); }
  const_iterator end() const { return Keys.end(); }

private:
  std::vector<T> Keys;
};

} // namespace velo

#endif // VELO_SUPPORT_FLATSET_H
