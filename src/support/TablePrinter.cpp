//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//

#include "support/TablePrinter.h"

#include <cassert>
#include <cstdio>

namespace velo {

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Columns(std::move(Header)) {}

void TablePrinter::startRow() { Rows.emplace_back(); }

void TablePrinter::cell(std::string Value) {
  assert(!Rows.empty() && "cell() before startRow()");
  assert(Rows.back().size() < Columns.size() && "row has too many cells");
  Rows.back().push_back(std::move(Value));
}

void TablePrinter::cell(int64_t Value) { cell(std::to_string(Value)); }

void TablePrinter::cell(uint64_t Value) { cell(std::to_string(Value)); }

void TablePrinter::cell(double Value, int Digits) {
  cell(fixed(Value, Digits));
}

std::string TablePrinter::fixed(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TablePrinter::withCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Out;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count && Count % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Count;
  }
  return std::string(Out.rbegin(), Out.rend());
}

std::string TablePrinter::str() const {
  std::vector<size_t> Widths;
  Widths.reserve(Columns.size());
  for (const std::string &Col : Columns)
    Widths.push_back(Col.size());
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Columns.size(); ++I) {
      const std::string &Cell = I < Row.size() ? Row[I] : std::string();
      Out += Cell;
      if (I + 1 < Columns.size())
        Out.append(Widths[I] - Cell.size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Columns);
  size_t RuleWidth = 0;
  for (size_t I = 0; I < Widths.size(); ++I)
    RuleWidth += Widths[I] + (I + 1 < Widths.size() ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

std::string TablePrinter::csv() const {
  auto Quote = [](const std::string &Cell) {
    bool Needs = Cell.find_first_of(",\"\n") != std::string::npos;
    if (!Needs)
      return Cell;
    std::string Out = "\"";
    for (char C : Cell) {
      if (C == '"')
        Out += '"';
      Out += C;
    }
    Out += '"';
    return Out;
  };

  std::string Out;
  auto AppendRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      if (I)
        Out += ',';
      Out += Quote(Row[I]);
    }
    Out += '\n';
  };
  AppendRow(Columns);
  for (const auto &Row : Rows)
    AppendRow(Row);
  return Out;
}

} // namespace velo
