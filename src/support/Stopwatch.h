//===- support/Stopwatch.h - Wall-clock timing ------------------*- C++ -*-===//
//
// Minimal monotonic stopwatch used by the Table 1 slowdown harness.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_STOPWATCH_H
#define VELO_SUPPORT_STOPWATCH_H

#include <chrono>

namespace velo {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace velo

#endif // VELO_SUPPORT_STOPWATCH_H
