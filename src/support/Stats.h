//===- support/Stats.h - Streaming summary statistics -----------*- C++ -*-===//
//
// Streaming min/max/mean accumulator and a high-water-mark counter. The
// latter backs the "Max. Alive" node statistics of Table 1.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_STATS_H
#define VELO_SUPPORT_STATS_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

namespace velo {

/// Streaming min / max / mean over doubles.
class Summary {
public:
  void add(double X) {
    ++N;
    Sum += X;
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }

  uint64_t count() const { return N; }
  double mean() const { return N ? Sum / static_cast<double>(N) : 0.0; }
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }

private:
  uint64_t N = 0;
  double Sum = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

/// A counter that remembers its high-water mark.
class HighWater {
public:
  void inc(uint64_t Delta = 1) {
    Current += Delta;
    Peak = std::max(Peak, Current);
  }

  void dec(uint64_t Delta = 1) {
    assert(Current >= Delta && "counter underflow");
    Current -= Delta;
  }

  uint64_t current() const { return Current; }
  uint64_t peak() const { return Peak; }

  /// Restore both values from a checkpoint.
  void restore(uint64_t Cur, uint64_t Pk) {
    Current = Cur;
    Peak = std::max(Pk, Cur);
  }

private:
  uint64_t Current = 0;
  uint64_t Peak = 0;
};

} // namespace velo

#endif // VELO_SUPPORT_STATS_H
