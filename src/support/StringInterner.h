//===- support/StringInterner.h - Name <-> id interning ---------*- C++ -*-===//
//
// Events carry integer ids for variables, locks, and atomic-block labels;
// the interner maps those ids back to human-readable names for warnings and
// dot error graphs (mirroring RoadRunner's field/method naming).
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_STRINGINTERNER_H
#define VELO_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace velo {

/// Bidirectional string <-> dense-id table. Ids are assigned in insertion
/// order starting at 0 and are stable for the lifetime of the interner.
class StringInterner {
public:
  /// Intern Name, returning its id (allocating a new id on first sight).
  uint32_t intern(std::string_view Name) {
    auto It = IdByName.find(std::string(Name));
    if (It != IdByName.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Names.size());
    Names.emplace_back(Name);
    IdByName.emplace(Names.back(), Id);
    return Id;
  }

  /// Look up a name without interning. Returns false if absent.
  bool lookup(std::string_view Name, uint32_t &IdOut) const {
    auto It = IdByName.find(std::string(Name));
    if (It == IdByName.end())
      return false;
    IdOut = It->second;
    return true;
  }

  /// Name for an id previously returned by intern().
  const std::string &name(uint32_t Id) const {
    assert(Id < Names.size() && "unknown interned id");
    return Names[Id];
  }

  /// Name for an id, with a fallback for ids minted outside this table
  /// (e.g. synthesized labels in unit tests).
  std::string nameOr(uint32_t Id, std::string_view Fallback) const {
    if (Id < Names.size())
      return Names[Id];
    return std::string(Fallback) + "#" + std::to_string(Id);
  }

  size_t size() const { return Names.size(); }

  /// Append the names Other holds beyond our current size, keeping ids
  /// aligned. Both tables must have grown append-only from a common prefix
  /// (true for a recorder shadowing a live trace's interner), so a plain
  /// size comparison makes the no-op case O(1).
  void syncFrom(const StringInterner &Other) {
    for (uint32_t Id = static_cast<uint32_t>(Names.size());
         Id < Other.size(); ++Id)
      intern(Other.name(Id));
  }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, uint32_t> IdByName;
};

} // namespace velo

#endif // VELO_SUPPORT_STRINGINTERNER_H
