//===- support/Syscalls.h - EINTR-safe syscall wrappers ---------*- C++ -*-===//
//
// Thin retry wrappers around the handful of POSIX calls the tools and the
// serve daemon issue directly. A signal delivered mid-syscall (SIGCHLD in
// the supervisor, a forwarded SIGTERM, a profiler tick) makes the kernel
// return EINTR; treating that as a real failure turns routine signals into
// spurious "cannot write checkpoint" / "waitpid failed" errors. Every
// wrapper here retries EINTR and nothing else — genuine errors still
// surface with errno intact.
//
// ignoreSigpipe() belongs here for the same reason: a client that
// disconnects (or a closed stdout pager) must produce a failed write the
// caller can handle, not SIGPIPE process death.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_SYSCALLS_H
#define VELO_SUPPORT_SYSCALLS_H

#include <cerrno>
#include <csignal>
#include <cstddef>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace velo {
namespace sys {

/// waitpid retrying EINTR. Returns the pid (or 0 under WNOHANG), or -1
/// with errno set on a genuine failure.
inline pid_t waitpidRetry(pid_t Pid, int *Status, int Flags) {
  for (;;) {
    pid_t R = ::waitpid(Pid, Status, Flags);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

/// read(2) retrying EINTR. Returns bytes read (0 at EOF) or -1 with errno
/// set (EAGAIN/EWOULDBLOCK pass through for non-blocking fds).
inline ssize_t readRetry(int Fd, void *Buf, size_t N) {
  for (;;) {
    ssize_t R = ::read(Fd, Buf, N);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

/// write(2) retrying EINTR. Returns bytes written or -1 with errno set.
inline ssize_t writeRetry(int Fd, const void *Buf, size_t N) {
  for (;;) {
    ssize_t R = ::write(Fd, Buf, N);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

/// Write all N bytes, retrying EINTR and short writes. Returns false with
/// errno set on a genuine failure.
inline bool writeAll(int Fd, const void *Buf, size_t N) {
  const char *P = static_cast<const char *>(Buf);
  while (N > 0) {
    ssize_t R = writeRetry(Fd, P, N);
    if (R < 0)
      return false;
    if (R == 0) { // write(2) never legitimately returns 0 for N > 0
      errno = EIO;
      return false;
    }
    P += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

/// Read exactly N bytes, retrying EINTR and short reads. Returns 1 on
/// success, 0 on clean EOF before any byte, -1 on error or truncation
/// mid-record (errno 0 when the peer simply closed early).
inline int readFull(int Fd, void *Buf, size_t N) {
  char *P = static_cast<char *>(Buf);
  size_t Got = 0;
  while (Got < N) {
    ssize_t R = readRetry(Fd, P + Got, N - Got);
    if (R < 0)
      return -1;
    if (R == 0) {
      if (Got == 0)
        return 0;
      errno = 0;
      return -1; // torn record: EOF mid-read
    }
    Got += static_cast<size_t>(R);
  }
  return 1;
}

/// close(2), swallowing EINTR (POSIX leaves the fd state unspecified on
/// EINTR; retrying risks closing a reused descriptor, so don't).
inline void closeQuiet(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

/// Ignore SIGPIPE process-wide so a peer disconnect or a closed stdout
/// pager surfaces as EPIPE on the write, not process death. Every tool
/// main and the serve daemon call this first.
inline void ignoreSigpipe() { std::signal(SIGPIPE, SIG_IGN); }

} // namespace sys
} // namespace velo

#endif // VELO_SUPPORT_SYSCALLS_H
