//===- support/Rng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the Velodrome reproduction. Deterministic, seedable PRNGs used by
// the cooperative scheduler, workload drivers, and property-test generators.
// Determinism matters: every experiment in EXPERIMENTS.md is keyed by a seed,
// and a trace must be exactly reproducible from (workload, size, seed).
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SUPPORT_RNG_H
#define VELO_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace velo {

/// SplitMix64: used to expand a user seed into stream state. Passes BigCrush;
/// a single multiply/xor pipeline, so it is also fast enough to use directly.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256** by Blackman & Vigna. The workhorse generator for schedulers
/// and workloads. Not cryptographic; deterministic across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x5eedULL) { reseed(Seed); }

  /// Re-initialize the stream from a 64-bit seed.
  void reseed(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : S)
      Word = SM.next();
  }

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(S[1] * 5, 7) * 9;
    uint64_t T = S[1] << 17;
    S[2] ^= S[0];
    S[3] ^= S[1];
    S[1] ^= S[2];
    S[0] ^= S[3];
    S[2] ^= T;
    S[3] = rotl(S[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). Bound must be positive. Uses rejection
  /// sampling to avoid modulo bias (bias would make seeds non-portable
  /// between argument orders in tests).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "empty range");
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Bernoulli trial with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) {
    assert(Den > 0 && Num <= Den && "probability out of range");
    return below(Den) < Num;
  }

  /// Uniform double in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename ContainerT> void shuffle(ContainerT &C) {
    for (size_t I = C.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(below(I));
      using std::swap;
      swap(C[I - 1], C[J]);
    }
  }

  /// Pick a uniformly random element (container must be non-empty).
  template <typename ContainerT> auto &pick(ContainerT &C) {
    assert(!C.empty() && "pick from empty container");
    return C[static_cast<size_t>(below(C.size()))];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t S[4];
};

} // namespace velo

#endif // VELO_SUPPORT_RNG_H
