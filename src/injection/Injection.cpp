//===- injection/Injection.cpp - Synchronization-defect injection ---------===//

#include "injection/Injection.h"

#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"

#include <set>

namespace velo {

bool injectionTrialDetects(const std::string &Name, const std::string &Site,
                           uint64_t Seed, int Scale, bool Adversarial,
                           int AdversarialStall) {
  std::unique_ptr<Workload> W = makeWorkload(Name);
  if (!W)
    return false;
  std::set<std::string> BaseTruth;
  for (const std::string &M : W->nonAtomicMethods())
    BaseTruth.insert(M);
  W->Scale = Scale;
  W->DisabledGuards.insert(Site);

  RuntimeOptions Opts;
  Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
  Opts.SchedulerSeed = Seed;
  Opts.WorkloadSeed = Seed * 11 + 3;
  Opts.Adversarial = Adversarial;
  Opts.AdversarialStall = AdversarialStall;

  Velodrome V;
  Atomizer Guide;
  std::vector<Backend *> Backends{&V};
  if (Adversarial)
    Backends.push_back(&Guide);
  Runtime RT(Opts, Backends);
  if (Adversarial)
    RT.setGuide(&Guide);
  W->run(RT);

  // A blame (resolved or not) outside the base ground truth only arises
  // from the injected corruption: on the uncorrupted programs, no blame —
  // resolved or unresolved — ever lands outside the truth set (checked by
  // the workload test suite across seeds).
  for (const AtomicityViolation &Violation : V.violations()) {
    if (Violation.Method == NoLabel)
      continue;
    if (!BaseTruth.count(RT.symbols().labelName(Violation.Method)))
      return true;
  }
  return false;
}

std::vector<InjectionOutcome> runInjectionStudy(const std::string &Name,
                                                const InjectionConfig &Cfg) {
  std::vector<InjectionOutcome> Out;
  std::unique_ptr<Workload> W = makeWorkload(Name);
  if (!W)
    return Out;

  for (const std::string &Site : W->guardSites()) {
    InjectionOutcome Outcome;
    Outcome.WorkloadName = Name;
    Outcome.Site = Site;
    Outcome.Trials = Cfg.TrialsPerSite;
    for (int Trial = 0; Trial < Cfg.TrialsPerSite; ++Trial) {
      uint64_t Seed = Cfg.SeedBase + static_cast<uint64_t>(Trial);
      if (injectionTrialDetects(Name, Site, Seed, Cfg.Scale,
                                /*Adversarial=*/false, Cfg.AdversarialStall))
        ++Outcome.DetectedPlain;
      if (Cfg.RunAdversarial &&
          injectionTrialDetects(Name, Site, Seed, Cfg.Scale,
                                /*Adversarial=*/true, Cfg.AdversarialStall))
        ++Outcome.DetectedAdversarial;
    }
    Out.push_back(Outcome);
  }
  return Out;
}

} // namespace velo
