//===- injection/Injection.h - Synchronization-defect injection -*- C++ -*-===//
//
// Section 6's defect-injection study: "we injected atomicity defects into
// two programs, elevator and colt, by systematically removing each
// synchronized statement that induced contention one at a time and then
// running our analysis on each corrupted program." Without scheduler
// adjustment Velodrome found the inserted defect in ~30% of single runs;
// with Atomizer-guided adversarial scheduling, ~70%.
//
// A run *detects* the injected defect when Velodrome blames a method that
// is not in the workload's base (uncorrupted) ground-truth bug list — i.e.
// a violation that only exists because the guard was removed.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_INJECTION_INJECTION_H
#define VELO_INJECTION_INJECTION_H

#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace velo {

/// Configuration for one injection study.
struct InjectionConfig {
  /// Scheduler seeds tried per corrupted variant.
  int TrialsPerSite = 10;
  /// Workload size multiplier.
  int Scale = 1;
  /// Also measure with Atomizer-guided adversarial scheduling.
  bool RunAdversarial = true;
  /// Scheduling decisions a suspicious thread is stalled for.
  int AdversarialStall = 50;
  /// First scheduler seed (seeds are Base..Base+Trials-1).
  uint64_t SeedBase = 0;
};

/// Outcome for one (workload, guard site) corrupted variant.
struct InjectionOutcome {
  std::string WorkloadName;
  std::string Site;
  int Trials = 0;
  /// Runs in which Velodrome flagged a beyond-ground-truth method.
  int DetectedPlain = 0;
  int DetectedAdversarial = 0;
};

/// Run the study over every guard site of the named workload. Returns one
/// outcome per site (empty if the workload has no sites / is unknown).
std::vector<InjectionOutcome> runInjectionStudy(const std::string &Name,
                                                const InjectionConfig &Cfg);

/// One trial: corrupt Site, run under Seed, return true if Velodrome
/// flagged a method outside the base ground truth.
bool injectionTrialDetects(const std::string &Name, const std::string &Site,
                           uint64_t Seed, int Scale, bool Adversarial,
                           int AdversarialStall);

} // namespace velo

#endif // VELO_INJECTION_INJECTION_H
