//===- eraser/LockSetEngine.h - Eraser lockset state machine ----*- C++ -*-===//
//
// The Eraser algorithm (Savage et al. 1997), as used in the paper twice:
// as the standalone race-detection baseline of Table 1, and embedded inside
// the Atomizer to classify memory accesses as both-movers (consistently
// lock-protected) or non-movers (potentially racy).
//
// Per-variable state machine:
//
//   Virgin --first access--> Exclusive(t)
//   Exclusive --read by u!=t--> Shared          (candidate set initialized)
//   Exclusive --write by u!=t--> SharedModified (candidate set initialized)
//   Shared --write--> SharedModified
//
// In Shared and SharedModified the candidate lockset is intersected with
// the accessor's held locks; an empty candidate set in SharedModified is a
// (potential) race. Deliberately no fork/join or volatile awareness — that
// imprecision is the source of the Atomizer false alarms that Velodrome
// eliminates (Table 2).
//
//===----------------------------------------------------------------------===//

#ifndef VELO_ERASER_LOCKSETENGINE_H
#define VELO_ERASER_LOCKSETENGINE_H

#include "analysis/Snapshot.h"
#include "events/Event.h"

#include <set>
#include <vector>

namespace velo {

/// Shared Eraser state machine used by the Eraser back-end and the Atomizer.
class LockSetEngine {
public:
  void clear() {
    Held.clear();
    Vars.clear();
  }

  void onAcquire(Tid T, LockId M) { heldOf(T).insert(M); }
  void onRelease(Tid T, LockId M) { heldOf(T).erase(M); }

  /// Record an access and report whether it is *unprotected* (the candidate
  /// lockset is empty while the variable is shared between threads). The
  /// Atomizer treats unprotected accesses as non-movers; the Eraser back-end
  /// reports a race when this returns true in the SharedModified state.
  bool accessIsUnprotected(Tid T, VarId X, bool IsWrite);

  /// Has variable X entered the SharedModified state with an empty
  /// candidate lockset at some point (a reportable Eraser race)?
  bool isRacyVar(VarId X) const {
    return X < Vars.size() && Vars[X].RacySharedModified;
  }

  /// Has variable X been observed by more than one thread (left the
  /// Virgin/Exclusive states)?
  bool isSharedVar(VarId X) const {
    return X < Vars.size() && (Vars[X].State == VarState::Shared ||
                               Vars[X].State == VarState::SharedModified);
  }

  const std::set<LockId> &heldLocks(Tid T) { return heldOf(T); }

  /// Surviving candidate guard locks for X — the locks held on *every*
  /// access since X became shared (empty for Virgin/Exclusive variables,
  /// whose candidate set was never initialized).
  std::set<LockId> candidateLocks(VarId X) const {
    if (X >= Vars.size() || (Vars[X].State != VarState::Shared &&
                             Vars[X].State != VarState::SharedModified))
      return {};
    return Vars[X].Candidate;
  }

  /// Human-readable name of X's state ("virgin" when never accessed).
  const char *stateName(VarId X) const {
    if (X >= Vars.size())
      return "virgin";
    switch (Vars[X].State) {
    case VarState::Virgin:
      return "virgin";
    case VarState::Exclusive:
      return "exclusive";
    case VarState::Shared:
      return "shared";
    case VarState::SharedModified:
      return "shared-modified";
    }
    return "virgin";
  }

  /// Checkpoint the full lockset state (held locks, per-variable state
  /// machine) / restore into a cleared engine.
  void serialize(SnapshotWriter &W) const;
  bool deserialize(SnapshotReader &R);

private:
  enum class VarState { Virgin, Exclusive, Shared, SharedModified };

  struct VarInfo {
    VarState State = VarState::Virgin;
    Tid Owner = 0;
    std::set<LockId> Candidate;
    bool RacySharedModified = false;
  };

  std::set<LockId> &heldOf(Tid T) {
    if (T >= Held.size())
      Held.resize(T + 1);
    return Held[T];
  }

  // Thread and variable ids are dense interner ids, so the hot per-access
  // path indexes flat vectors instead of hashing (Virgin slots stand in
  // for absent entries and are skipped when serializing).
  std::vector<std::set<LockId>> Held;
  std::vector<VarInfo> Vars;
};

} // namespace velo

#endif // VELO_ERASER_LOCKSETENGINE_H
