//===- eraser/Eraser.h - Eraser race-detection back-end ---------*- C++ -*-===//
//
// Back-end wrapper over LockSetEngine: the "Eraser" row of Table 1. Reports
// one race warning per variable that reaches SharedModified with an empty
// candidate lockset.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_ERASER_ERASER_H
#define VELO_ERASER_ERASER_H

#include "analysis/Backend.h"
#include "eraser/LockSetEngine.h"

#include <set>

namespace velo {

/// Lockset-based dynamic race detector (Savage et al.), RoadRunner-style.
class Eraser : public Backend {
public:
  const char *name() const override { return "Eraser"; }

  void beginAnalysis(const SymbolTable &Syms) override {
    Backend::beginAnalysis(Syms);
    Engine.clear();
    ReportedVars.clear();
  }

  void onEvent(const Event &E) override {
    countEvent();
    switch (E.Kind) {
    case Op::Acquire:
      Engine.onAcquire(E.Thread, E.lock());
      return;
    case Op::Release:
      Engine.onRelease(E.Thread, E.lock());
      return;
    case Op::Read:
    case Op::Write: {
      Engine.accessIsUnprotected(E.Thread, E.var(), E.Kind == Op::Write);
      if (Engine.isRacyVar(E.var()) && ReportedVars.insert(E.var()).second) {
        Warning W;
        W.Analysis = "eraser";
        W.Category = "race";
        W.Method = NoLabel;
        W.RuleId = "VELO-RACE-002";
        W.Thread = E.Thread;
        W.Ordinal = eventOrdinal();
        W.Message =
            "possible race: variable " +
            (Symbols ? Symbols->varName(E.var()) : std::to_string(E.var())) +
            " is write-shared with an empty candidate lockset (T" +
            std::to_string(E.Thread) + ")";
        report(std::move(W));
      }
      return;
    }
    case Op::Begin:
    case Op::End:
    case Op::Fork: // classic Eraser has no fork/join awareness
    case Op::Join:
      return;
    }
  }

  const LockSetEngine &engine() const { return Engine; }

  bool supportsSnapshot() const override { return true; }

  void serialize(SnapshotWriter &W) const override {
    serializeBase(W);
    Engine.serialize(W);
    W.u64(ReportedVars.size());
    for (VarId X : ReportedVars)
      W.u32(X);
  }

  bool deserialize(SnapshotReader &R) override {
    if (!deserializeBase(R) || !Engine.deserialize(R))
      return false;
    uint64_t N = R.u64();
    for (uint64_t I = 0; I < N && !R.failed(); ++I)
      ReportedVars.insert(R.u32());
    return !R.failed();
  }

private:
  LockSetEngine Engine;
  std::set<VarId> ReportedVars;
};

} // namespace velo

#endif // VELO_ERASER_ERASER_H
