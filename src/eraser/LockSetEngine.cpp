//===- eraser/LockSetEngine.cpp - Eraser lockset state machine ------------===//

#include "eraser/LockSetEngine.h"

#include <algorithm>

namespace velo {

bool LockSetEngine::accessIsUnprotected(Tid T, VarId X, bool IsWrite) {
  VarInfo &V = Vars[X];
  const std::set<LockId> &Locks = Held[T];

  auto Intersect = [&]() {
    std::set<LockId> Out;
    std::set_intersection(V.Candidate.begin(), V.Candidate.end(),
                          Locks.begin(), Locks.end(),
                          std::inserter(Out, Out.begin()));
    V.Candidate = std::move(Out);
  };

  switch (V.State) {
  case VarState::Virgin:
    V.State = VarState::Exclusive;
    V.Owner = T;
    return false;
  case VarState::Exclusive:
    if (V.Owner == T)
      return false; // still thread-local
    V.Candidate = Locks;
    V.State = IsWrite ? VarState::SharedModified : VarState::Shared;
    if (V.State == VarState::SharedModified && V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    // First sharing with an empty lockset is already suspicious for the
    // Atomizer's mover classification.
    return V.Candidate.empty();
  case VarState::Shared:
    Intersect();
    if (IsWrite) {
      V.State = VarState::SharedModified;
      if (V.Candidate.empty()) {
        V.RacySharedModified = true;
        return true;
      }
    }
    return V.Candidate.empty();
  case VarState::SharedModified:
    Intersect();
    if (V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    return false;
  }
  return false;
}

} // namespace velo
