//===- eraser/LockSetEngine.cpp - Eraser lockset state machine ------------===//

#include "eraser/LockSetEngine.h"

#include <algorithm>

namespace velo {

bool LockSetEngine::accessIsUnprotected(Tid T, VarId X, bool IsWrite) {
  if (X >= Vars.size())
    Vars.resize(X + 1);
  VarInfo &V = Vars[X];
  const std::set<LockId> &Locks = heldOf(T);

  auto Intersect = [&]() {
    std::set<LockId> Out;
    std::set_intersection(V.Candidate.begin(), V.Candidate.end(),
                          Locks.begin(), Locks.end(),
                          std::inserter(Out, Out.begin()));
    V.Candidate = std::move(Out);
  };

  switch (V.State) {
  case VarState::Virgin:
    V.State = VarState::Exclusive;
    V.Owner = T;
    return false;
  case VarState::Exclusive:
    if (V.Owner == T)
      return false; // still thread-local
    V.Candidate = Locks;
    V.State = IsWrite ? VarState::SharedModified : VarState::Shared;
    if (V.State == VarState::SharedModified && V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    // First sharing with an empty lockset is already suspicious for the
    // Atomizer's mover classification.
    return V.Candidate.empty();
  case VarState::Shared:
    Intersect();
    if (IsWrite) {
      V.State = VarState::SharedModified;
      if (V.Candidate.empty()) {
        V.RacySharedModified = true;
        return true;
      }
    }
    return V.Candidate.empty();
  case VarState::SharedModified:
    Intersect();
    if (V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    return false;
  }
  return false;
}

void LockSetEngine::serialize(SnapshotWriter &W) const {
  // Vector slots stand in for absent map entries: skip the defaults
  // (empty held sets, Virgin variables) so the payload only carries
  // entities the engine has actually observed.
  uint64_t NumThreads = 0;
  for (const std::set<LockId> &Locks : Held)
    if (!Locks.empty())
      ++NumThreads;
  W.u64(NumThreads);
  for (Tid T = 0; T < Held.size(); ++T) {
    const std::set<LockId> &Locks = Held[T];
    if (Locks.empty())
      continue;
    W.u32(T);
    W.u64(Locks.size());
    for (LockId M : Locks)
      W.u32(M);
  }

  uint64_t NumVars = 0;
  for (const VarInfo &V : Vars)
    if (V.State != VarState::Virgin)
      ++NumVars;
  W.u64(NumVars);
  for (VarId X = 0; X < Vars.size(); ++X) {
    const VarInfo &V = Vars[X];
    if (V.State == VarState::Virgin)
      continue;
    W.u32(X);
    W.u8(static_cast<uint8_t>(V.State));
    W.u32(V.Owner);
    W.u64(V.Candidate.size());
    for (LockId M : V.Candidate)
      W.u32(M);
    W.boolean(V.RacySharedModified);
  }
}

bool LockSetEngine::deserialize(SnapshotReader &R) {
  clear();
  uint64_t NumThreads = R.u64();
  for (uint64_t I = 0; I < NumThreads && !R.failed(); ++I) {
    Tid T = R.u32();
    std::set<LockId> &Locks = heldOf(T);
    uint64_t N = R.u64();
    for (uint64_t J = 0; J < N && !R.failed(); ++J)
      Locks.insert(R.u32());
  }
  uint64_t NumVars = R.u64();
  for (uint64_t I = 0; I < NumVars && !R.failed(); ++I) {
    VarId X = R.u32();
    if (R.failed())
      break;
    if (X >= Vars.size())
      Vars.resize(X + 1);
    VarInfo &V = Vars[X];
    V.State = static_cast<VarState>(R.u8());
    V.Owner = R.u32();
    uint64_t N = R.u64();
    for (uint64_t J = 0; J < N && !R.failed(); ++J)
      V.Candidate.insert(R.u32());
    V.RacySharedModified = R.boolean();
  }
  return !R.failed();
}

} // namespace velo
