//===- eraser/LockSetEngine.cpp - Eraser lockset state machine ------------===//

#include "eraser/LockSetEngine.h"

#include <algorithm>
#include <vector>

namespace velo {

bool LockSetEngine::accessIsUnprotected(Tid T, VarId X, bool IsWrite) {
  VarInfo &V = Vars[X];
  const std::set<LockId> &Locks = Held[T];

  auto Intersect = [&]() {
    std::set<LockId> Out;
    std::set_intersection(V.Candidate.begin(), V.Candidate.end(),
                          Locks.begin(), Locks.end(),
                          std::inserter(Out, Out.begin()));
    V.Candidate = std::move(Out);
  };

  switch (V.State) {
  case VarState::Virgin:
    V.State = VarState::Exclusive;
    V.Owner = T;
    return false;
  case VarState::Exclusive:
    if (V.Owner == T)
      return false; // still thread-local
    V.Candidate = Locks;
    V.State = IsWrite ? VarState::SharedModified : VarState::Shared;
    if (V.State == VarState::SharedModified && V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    // First sharing with an empty lockset is already suspicious for the
    // Atomizer's mover classification.
    return V.Candidate.empty();
  case VarState::Shared:
    Intersect();
    if (IsWrite) {
      V.State = VarState::SharedModified;
      if (V.Candidate.empty()) {
        V.RacySharedModified = true;
        return true;
      }
    }
    return V.Candidate.empty();
  case VarState::SharedModified:
    Intersect();
    if (V.Candidate.empty()) {
      V.RacySharedModified = true;
      return true;
    }
    return false;
  }
  return false;
}

void LockSetEngine::serialize(SnapshotWriter &W) const {
  std::vector<Tid> Tids;
  for (const auto &KV : Held)
    Tids.push_back(KV.first);
  std::sort(Tids.begin(), Tids.end());
  W.u64(Tids.size());
  for (Tid T : Tids) {
    const std::set<LockId> &Locks = Held.at(T);
    W.u32(T);
    W.u64(Locks.size());
    for (LockId M : Locks)
      W.u32(M);
  }

  std::vector<VarId> VarIds;
  for (const auto &KV : Vars)
    VarIds.push_back(KV.first);
  std::sort(VarIds.begin(), VarIds.end());
  W.u64(VarIds.size());
  for (VarId X : VarIds) {
    const VarInfo &V = Vars.at(X);
    W.u32(X);
    W.u8(static_cast<uint8_t>(V.State));
    W.u32(V.Owner);
    W.u64(V.Candidate.size());
    for (LockId M : V.Candidate)
      W.u32(M);
    W.boolean(V.RacySharedModified);
  }
}

bool LockSetEngine::deserialize(SnapshotReader &R) {
  clear();
  uint64_t NumThreads = R.u64();
  for (uint64_t I = 0; I < NumThreads && !R.failed(); ++I) {
    Tid T = R.u32();
    std::set<LockId> &Locks = Held[T];
    uint64_t N = R.u64();
    for (uint64_t J = 0; J < N && !R.failed(); ++J)
      Locks.insert(R.u32());
  }
  uint64_t NumVars = R.u64();
  for (uint64_t I = 0; I < NumVars && !R.failed(); ++I) {
    VarId X = R.u32();
    VarInfo &V = Vars[X];
    V.State = static_cast<VarState>(R.u8());
    V.Owner = R.u32();
    uint64_t N = R.u64();
    for (uint64_t J = 0; J < N && !R.failed(); ++J)
      V.Candidate.insert(R.u32());
    V.RacySharedModified = R.boolean();
  }
  return !R.failed();
}

} // namespace velo
