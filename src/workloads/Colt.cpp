//===- workloads/Colt.cpp - Scientific computing library (CERN Colt) -------===//
//
// Analogue of the `colt` scientific library benchmark: concurrent clients
// hammer a matrix object with lazily cached aggregates, a streaming
// descriptive-statistics object, a histogram, and an append buffer. Library
// code is full of small methods; many cache or aggregate lazily with
// check-then-init idioms that are not atomic — colt is where the paper's
// Table 2 reports one of the larger warning counts (27 methods, 20 caught).
//
//   non-atomic (ground truth):
//     Matrix.cacheRowSum    check-then-init of the row-sum cache
//     Matrix.cacheColSum    check-then-init of the column-sum cache
//     Matrix.trace          unguarded diagonal scan
//     Histogram.add         bin counter RMW, no lock
//     Histogram.rebin       drain and rebuild in separate sections
//     Descriptive.addValue  n/sum/sumsq updated in separate sections
//     Descriptive.moment    torn read of n and sum
//     Descriptive.minMax    check-then-update of running min and max
//     Buffer.append         size check and slot write split
//     Buffer.flushCheck     size read unguarded, clear guarded
//     Sort.swapCount        global swap counter RMW, no lock
//
//   atomic: Matrix.get, Matrix.set, Matrix.scale (single sections under
//           matrix.mu), Histogram.total (single section), Buffer.size
//
//   injection sites: matrix.mu, hist.mu, buffer.mu, desc.mu — the Section 6
//   study removes these one at a time (colt is one of its two subjects).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class ColtWorkload : public Workload {
public:
  const char *name() const override { return "colt"; }
  const char *description() const override {
    return "CERN Colt-style matrix/statistics library under concurrency";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Matrix.cacheRowSum",  "Matrix.cacheColSum", "Matrix.trace",
            "Histogram.add",       "Histogram.rebin",    "Histogram.total",
            "Descriptive.addValue", "Descriptive.moment", "Descriptive.minMax",
            "Buffer.append",       "Buffer.flushCheck",  "Sort.swapCount"};
  }

  std::vector<std::string> guardSites() const override {
    return {"matrix.mu", "hist.mu", "buffer.mu", "desc.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumClients = 4;
    const int OpsPerClient = 16 * Scale;
    const int Dim = 3;
    const int Bins = 5;
    const int BufCap = 12;

    LockVar &MatrixMu = RT.lock("Matrix.mu");
    LockVar &HistMu = RT.lock("Histogram.mu");
    LockVar &BufferMu = RT.lock("Buffer.mu");
    LockVar &DescMu = RT.lock("Descriptive.mu");

    std::vector<SharedVar *> Cells, BinCount, BufData, RowSum, ColSum;
    for (int I = 0; I < Dim * Dim; ++I)
      Cells.push_back(&RT.var("Matrix.cells[" + std::to_string(I) + "]"));
    for (int I = 0; I < Dim; ++I) {
      RowSum.push_back(&RT.var("Matrix.rowSum[" + std::to_string(I) + "]"));
      ColSum.push_back(&RT.var("Matrix.colSum[" + std::to_string(I) + "]"));
    }
    for (int I = 0; I < Bins; ++I)
      BinCount.push_back(&RT.var("Histogram.bin[" + std::to_string(I) + "]"));
    for (int I = 0; I < BufCap; ++I)
      BufData.push_back(&RT.var("Buffer.data[" + std::to_string(I) + "]"));
    SharedVar &RowSumValid = RT.var("Matrix.rowSumValid");
    SharedVar &ColSumValid = RT.var("Matrix.colSumValid");
    SharedVar &DescN = RT.var("Descriptive.n");
    SharedVar &DescSum = RT.var("Descriptive.sum");
    SharedVar &DescSumSq = RT.var("Descriptive.sumSq");
    SharedVar &DescMin = RT.var("Descriptive.min");
    SharedVar &DescMax = RT.var("Descriptive.max");
    SharedVar &BufSize = RT.var("Buffer.size");
    SharedVar &Swaps = RT.var("Sort.swaps");
    SharedVar &WindowLo = RT.var("Descriptive.windowLo");
    SharedVar &WindowHi = RT.var("Descriptive.windowHi");
    SharedVar &Overflow = RT.var("Histogram.overflow");
    SharedVar &Underflow = RT.var("Histogram.underflow");

    bool GMat = guardEnabled("matrix.mu");
    bool GHist = guardEnabled("hist.mu");
    bool GBuf = guardEnabled("buffer.mu");
    bool GDesc = guardEnabled("desc.mu");

    RT.run([&, NumClients, OpsPerClient, Dim, Bins, BufCap](
               MonitoredThread &Main) {
      Main.write(DescMin, 1'000'000);
      Main.write(DescMax, -1'000'000);

      std::vector<Tid> Clients;
      for (int C = 0; C < NumClients; ++C) {
        Clients.push_back(Main.fork([&, OpsPerClient, Dim, Bins,
                                     BufCap](MonitoredThread &T) {
          for (int OpIdx = 0; OpIdx < OpsPerClient; ++OpIdx) {
            int64_t V = static_cast<int64_t>(T.rng().below(100));
            int Cell = static_cast<int>(T.rng().below(Dim * Dim));
            switch (T.rng().below(12)) {
            case 0: { // Matrix.set (atomic)
              AtomicRegion A(T, "Matrix.set");
              if (GMat)
                T.lockAcquire(MatrixMu);
              T.write(*Cells[Cell], V);
              T.write(RowSumValid, 0); // invalidate caches
              T.write(ColSumValid, 0);
              if (GMat)
                T.lockRelease(MatrixMu);
              break;
            }
            case 1: { // Matrix.get (atomic)
              AtomicRegion A(T, "Matrix.get");
              if (GMat)
                T.lockAcquire(MatrixMu);
              T.read(*Cells[Cell]);
              if (GMat)
                T.lockRelease(MatrixMu);
              break;
            }
            case 2: { // Matrix.scale (atomic)
              AtomicRegion A(T, "Matrix.scale");
              if (GMat)
                T.lockAcquire(MatrixMu);
              for (int I = 0; I < Dim; ++I)
                T.write(*Cells[I], T.read(*Cells[I]) * 2 % 97);
              T.write(RowSumValid, 0);
              if (GMat)
                T.lockRelease(MatrixMu);
              break;
            }
            case 3: { // Matrix.cacheRowSum: check-then-init, two sections
              AtomicRegion A(T, "Matrix.cacheRowSum");
              if (GMat)
                T.lockAcquire(MatrixMu);
              bool Valid = T.read(RowSumValid) != 0;
              if (GMat)
                T.lockRelease(MatrixMu);
              if (!Valid) {
                if (GMat)
                  T.lockAcquire(MatrixMu);
                for (int R = 0; R < Dim; ++R) {
                  int64_t Sum = 0;
                  for (int K = 0; K < Dim; ++K)
                    Sum += T.read(*Cells[R * Dim + K]);
                  T.write(*RowSum[R], Sum);
                }
                T.write(RowSumValid, 1);
                if (GMat)
                  T.lockRelease(MatrixMu);
              }
              break;
            }
            case 4: { // Matrix.cacheColSum: same idiom
              AtomicRegion A(T, "Matrix.cacheColSum");
              if (GMat)
                T.lockAcquire(MatrixMu);
              bool Valid = T.read(ColSumValid) != 0;
              if (GMat)
                T.lockRelease(MatrixMu);
              if (!Valid) {
                if (GMat)
                  T.lockAcquire(MatrixMu);
                for (int K = 0; K < Dim; ++K) {
                  int64_t Sum = 0;
                  for (int R = 0; R < Dim; ++R)
                    Sum += T.read(*Cells[R * Dim + K]);
                  T.write(*ColSum[K], Sum);
                }
                T.write(ColSumValid, 1);
                if (GMat)
                  T.lockRelease(MatrixMu);
              }
              break;
            }
            case 5: { // Matrix.trace: unguarded diagonal scan
              AtomicRegion A(T, "Matrix.trace");
              int64_t Tr = 0;
              for (int I = 0; I < Dim; ++I)
                Tr += T.read(*Cells[I * Dim + I]);
              (void)Tr;
              break;
            }
            case 6: { // Histogram.add: unguarded bin RMW; total guarded
              AtomicRegion A(T, "Histogram.add");
              int B = static_cast<int>(V % Bins);
              T.write(*BinCount[B], T.read(*BinCount[B]) + 1);
              break;
            }
            case 7: { // Histogram.rebin: drain then rebuild, two sections
              AtomicRegion A(T, "Histogram.rebin");
              int64_t Total = 0;
              if (GHist)
                T.lockAcquire(HistMu);
              for (int B = 0; B < Bins; ++B)
                Total += T.read(*BinCount[B]);
              if (GHist)
                T.lockRelease(HistMu);
              if (GHist)
                T.lockAcquire(HistMu);
              for (int B = 0; B < Bins; ++B)
                T.write(*BinCount[B], Total / Bins);
              if (GHist)
                T.lockRelease(HistMu);
              break;
            }
            case 8: { // Descriptive.addValue: three separate sections
              AtomicRegion A(T, "Descriptive.addValue");
              if (GDesc)
                T.lockAcquire(DescMu);
              T.write(DescN, T.read(DescN) + 1);
              if (GDesc)
                T.lockRelease(DescMu);
              if (GDesc)
                T.lockAcquire(DescMu);
              T.write(DescSum, T.read(DescSum) + V);
              if (GDesc)
                T.lockRelease(DescMu);
              if (GDesc)
                T.lockAcquire(DescMu);
              T.write(DescSumSq, T.read(DescSumSq) + V * V);
              if (GDesc)
                T.lockRelease(DescMu);
              break;
            }
            case 9: { // Descriptive.moment + minMax
              {
                AtomicRegion A(T, "Descriptive.moment");
                int64_t N = T.read(DescN); // unguarded torn read
                int64_t Sum = T.read(DescSum);
                (void)(N + Sum);
              }
              {
                AtomicRegion A(T, "Descriptive.minMax");
                int64_t Min = T.read(DescMin);
                if (V < Min)
                  T.write(DescMin, V);
                int64_t Max = T.read(DescMax);
                if (V > Max)
                  T.write(DescMax, V);
              }
              break;
            }
            case 10: { // Buffer.append + flushCheck + size
              {
                AtomicRegion A(T, "Buffer.append");
                int64_t N = T.read(BufSize); // unguarded size probe
                if (N < BufCap) {
                  if (GBuf)
                    T.lockAcquire(BufferMu);
                  int64_t Now = T.read(BufSize);
                  if (Now < BufCap) {
                    T.write(*BufData[Now], V);
                    T.write(BufSize, Now + 1);
                  }
                  if (GBuf)
                    T.lockRelease(BufferMu);
                }
              }
              {
                AtomicRegion A(T, "Buffer.flushCheck");
                int64_t N = T.read(BufSize); // unguarded
                if (N >= BufCap - 2) {
                  if (GBuf)
                    T.lockAcquire(BufferMu);
                  T.write(BufSize, 0);
                  if (GBuf)
                    T.lockRelease(BufferMu);
                }
              }
              {
                AtomicRegion A(T, "Buffer.size");
                if (GBuf)
                  T.lockAcquire(BufferMu);
                T.read(BufSize);
                if (GBuf)
                  T.lockRelease(BufferMu);
              }
              {
                // Buffer.last: size lookup plus tail read in one guarded
                // section — atomic until the injection study removes
                // buffer.mu, at which point the tail read can see a
                // concurrent append/flush between the two accesses.
                AtomicRegion A(T, "Buffer.last");
                if (GBuf)
                  T.lockAcquire(BufferMu);
                int64_t N = T.read(BufSize);
                if (N > 0 && N <= BufCap)
                  T.read(*BufData[N - 1]);
                // Stability re-check: without the lock, any concurrent
                // append/flush between the two size reads pins this method.
                T.read(BufSize);
                if (GBuf)
                  T.lockRelease(BufferMu);
              }
              break;
            }
            case 11: { // Guarded methods over lock-exclusive state (the
              // window bounds and overflow counters are touched *only*
              // under their locks): atomic while guarded; the injection
              // study removes desc.mu / hist.mu to create fresh defects.
              for (int Round = 0; Round < 3; ++Round) {
                if ((V + Round) % 2 == 0) {
                  {
                    AtomicRegion A(T, "Descriptive.setWindow");
                    if (GDesc)
                      T.lockAcquire(DescMu);
                    T.write(WindowLo, V + Round);
                    T.write(WindowHi, V + Round + 10);
                    if (GDesc)
                      T.lockRelease(DescMu);
                  }
                  {
                    AtomicRegion A(T, "Descriptive.windowWidth");
                    if (GDesc)
                      T.lockAcquire(DescMu);
                    int64_t Width = T.read(WindowHi) - T.read(WindowLo);
                    (void)Width;
                    if (GDesc)
                      T.lockRelease(DescMu);
                  }
                } else {
                  {
                    AtomicRegion A(T, "Histogram.recordOverflow");
                    if (GHist)
                      T.lockAcquire(HistMu);
                    T.write(Overflow, T.read(Overflow) + 1);
                    T.write(Underflow, T.read(Underflow) + (V % 2));
                    if (GHist)
                      T.lockRelease(HistMu);
                  }
                  {
                    AtomicRegion A(T, "Histogram.checkRange");
                    if (GHist)
                      T.lockAcquire(HistMu);
                    int64_t Out = T.read(Overflow) + T.read(Underflow);
                    (void)Out;
                    if (GHist)
                      T.lockRelease(HistMu);
                  }
                }
              }
              break;
            }
            default: { // Sort.swapCount + Histogram.total
              {
                AtomicRegion A(T, "Sort.swapCount");
                T.write(Swaps, T.read(Swaps) + V % 3);
              }
              {
                AtomicRegion A(T, "Histogram.total");
                // The bins are hammered by unguarded Histogram.add RMWs,
                // so even this locked scan is torn — genuinely non-atomic.
                if (GHist)
                  T.lockAcquire(HistMu);
                int64_t Total = 0;
                for (int B = 0; B < Bins; ++B)
                  Total += T.read(*BinCount[B]);
                (void)Total;
                if (GHist)
                  T.lockRelease(HistMu);
              }
              break;
            }
            }
          }
        }));
      }
      for (Tid C : Clients)
        Main.join(C);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeColt() {
  return std::make_unique<ColtWorkload>();
}

} // namespace velo
