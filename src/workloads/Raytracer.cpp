//===- workloads/Raytracer.cpp - Java Grande ray tracer --------------------===//
//
// Analogue of `raytracer` from the Java Grande suite, carrying its famous
// defect: the render checksum is accumulated with no synchronization. A
// second, much narrower defect (a one-shot check-then-act on a shared
// scratch buffer) fires only under tight interleavings — the paper reports
// Velodrome initially detected 1 of raytracer's 2 non-atomic methods and
// found the second only with Atomizer-guided adversarial scheduling.
//
//   non-atomic (ground truth):
//     RayTracer.addChecksum  unguarded checksum += (the JGF bug)
//     Scene.reuseBuffer      one-shot buffer-claim check-then-act with a
//                            single-operation window (rarely interleaved)
//
//   atomic: RayTracer.renderRow (row locks), Scene.build (pre-fork),
//           RayTracer.nextRow (single critical section)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class RaytracerWorkload : public Workload {
public:
  const char *name() const override { return "raytracer"; }
  const char *description() const override {
    return "Java Grande ray tracer with the unguarded checksum defect";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"RayTracer.addChecksum", "Scene.reuseBuffer"};
  }

  std::vector<std::string> guardSites() const override {
    return {"row.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumThreads = 3;
    const int Rows = 9 * Scale;

    SharedVar &Checksum = RT.var("RayTracer.checksum");
    SharedVar &RowCursor = RT.var("RayTracer.rowCursor");
    SharedVar &BufferOwner = RT.var("Scene.bufferOwner");
    LockVar &CursorMu = RT.lock("RayTracer.cursorMu");
    std::vector<SharedVar *> Pixels;
    std::vector<LockVar *> RowMu;
    const int PixelRows = 4;
    for (int R = 0; R < PixelRows; ++R) {
      Pixels.push_back(&RT.var("Image.row[" + std::to_string(R) + "]"));
      RowMu.push_back(&RT.lock("Image.rowMu[" + std::to_string(R) + "]"));
    }
    SharedVar &SceneSize = RT.var("Scene.size");

    bool GuardRow = guardEnabled("row.mu");

    RT.run([&, NumThreads, Rows, PixelRows](MonitoredThread &Main) {
      { // Scene.build: pre-fork (atomic).
        AtomicRegion A(Main, "Scene.build");
        Main.write(SceneSize, 64);
        Main.write(BufferOwner, -1);
      }

      std::vector<Tid> Renderers;
      for (int W = 0; W < NumThreads; ++W) {
        Renderers.push_back(Main.fork([&, W, Rows, PixelRows](
                                          MonitoredThread &T) {
          bool TriedBuffer = false;
          for (;;) {
            // RayTracer.nextRow: single critical section (atomic).
            int64_t Row;
            {
              AtomicRegion A(T, "RayTracer.nextRow");
              T.lockAcquire(CursorMu);
              Row = T.read(RowCursor);
              if (Row < Rows)
                T.write(RowCursor, Row + 1);
              T.lockRelease(CursorMu);
            }
            if (Row >= Rows)
              return;

            // Scene.reuseBuffer: each renderer tries exactly once to claim
            // the shared scratch buffer — an unguarded check-then-act with
            // a single-operation window, so a violating interleaving is
            // rare (found reliably only under adversarial scheduling).
            if (!TriedBuffer) {
              TriedBuffer = true;
              AtomicRegion A(T, "Scene.reuseBuffer");
              if (T.read(BufferOwner) < 0)
                T.write(BufferOwner, W);
            }

            // RayTracer.renderRow: pixels under the row lock (atomic).
            int64_t RowSum = 0;
            {
              AtomicRegion A(T, "RayTracer.renderRow");
              int Slot = static_cast<int>(Row % PixelRows);
              if (GuardRow)
                T.lockAcquire(*RowMu[Slot]);
              int64_t Size = T.read(SceneSize); // immutable after build
              for (int Px = 0; Px < 3; ++Px)
                RowSum += (Row * 31 + Px * 7) % (Size + 1);
              T.write(*Pixels[Slot], RowSum);
              if (GuardRow)
                T.lockRelease(*RowMu[Slot]);
            }

            // RayTracer.addChecksum: the JGF bug — unguarded +=.
            {
              AtomicRegion A(T, "RayTracer.addChecksum");
              T.write(Checksum, T.read(Checksum) + RowSum);
            }
          }
        }));
      }
      for (Tid W : Renderers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeRaytracer() {
  return std::make_unique<RaytracerWorkload>();
}

} // namespace velo
