//===- workloads/Raja.cpp - Raja ray tracer (clean) ------------------------===//
//
// Analogue of the `raja` ray tracer: the one benchmark on which *both*
// tools report nothing (Table 2: 0 warnings, 0 false alarms). Raja's
// concurrency is disciplined: static row partitioning (no shared cursor),
// per-method single critical sections over one lock, and otherwise
// thread-local state — so every atomic method is reducible (no Atomizer
// warning) and every trace is serializable (no Velodrome warning).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class RajaWorkload : public Workload {
public:
  const char *name() const override { return "raja"; }
  const char *description() const override {
    return "cleanly synchronized ray tracer (no warnings expected)";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override { return {}; }

  std::vector<std::string> guardSites() const override {
    return {"image.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumThreads = 3;
    const int RowsPerThread = 6 * Scale;

    LockVar &ImageMu = RT.lock("Image.mu");
    SharedVar &ImageSum = RT.var("Image.sum");
    SharedVar &RowsDone = RT.var("Image.rowsDone");
    bool Guard = guardEnabled("image.mu");

    RT.run([&, NumThreads, RowsPerThread](MonitoredThread &Main) {
      std::vector<Tid> Workers;
      for (int W = 0; W < NumThreads; ++W) {
        Workers.push_back(Main.fork([&, W, RowsPerThread](
                                        MonitoredThread &T) {
          // Static partition: rows [W*RowsPerThread, (W+1)*RowsPerThread).
          for (int R = 0; R < RowsPerThread; ++R) {
            // Raja.traceRow: entirely thread-local ray computation.
            int64_t RowSum = 0;
            {
              AtomicRegion A(T, "Raja.traceRow");
              int Row = W * RowsPerThread + R;
              for (int Px = 0; Px < 5; ++Px) {
                int64_t Hit = (Row * 37 + Px * 11) % 23;
                RowSum += Hit * Hit % 101;
              }
            }
            // Raja.commitRow: one critical section, both shared updates
            // inside it.
            {
              AtomicRegion A(T, "Raja.commitRow");
              if (Guard)
                T.lockAcquire(ImageMu);
              T.write(ImageSum, T.read(ImageSum) + RowSum);
              T.write(RowsDone, T.read(RowsDone) + 1);
              if (Guard)
                T.lockRelease(ImageMu);
            }
          }
        }));
      }
      for (Tid W : Workers)
        Main.join(W);

      // Raja.finish: post-join read-out (ordered by join edges).
      AtomicRegion A(Main, "Raja.finish");
      if (Guard)
        Main.lockAcquire(ImageMu);
      int64_t Sum = Main.read(ImageSum);
      int64_t Done = Main.read(RowsDone);
      (void)(Sum + Done);
      if (Guard)
        Main.lockRelease(ImageMu);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeRaja() {
  return std::make_unique<RajaWorkload>();
}

} // namespace velo
