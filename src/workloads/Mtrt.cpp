//===- workloads/Mtrt.cpp - SPEC JVM98 multithreaded ray tracer ------------===//
//
// Analogue of `mtrt` (SPEC JVM98 227_mtrt): two-or-more render threads
// trace rays through a scene that the main thread builds before forking.
// The scene is immutable during rendering and is published through the
// fork edges — the heavy use of "uninstrumented-library-style" shared reads
// is why the paper's Atomizer produced 27 false alarms here while Velodrome
// produced none.
//
//   non-atomic (ground truth):
//     RayTracer.updateChecksum  the classic unguarded checksum RMW
//     WorkPool.nextRow          row cursor read and advance in separate
//                               critical sections
//
//   atomic but Atomizer-flagged (false alarms): Scene.intersect,
//     Scene.shade, Camera.rayFor — multi-read methods over fork-published
//     immutable scene data
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class MtrtWorkload : public Workload {
public:
  const char *name() const override { return "mtrt"; }
  const char *description() const override {
    return "multithreaded ray tracer over a fork-published immutable scene";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"RayTracer.updateChecksum", "WorkPool.nextRow"};
  }

  std::vector<std::string> guardSites() const override {
    return {"pool.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumThreads = 2;
    const int NumSpheres = 5;
    const int Rows = 8 * Scale;

    std::vector<SharedVar *> SphereX, SphereR, LightI;
    for (int S = 0; S < NumSpheres; ++S) {
      SphereX.push_back(&RT.var("Scene.sphereX[" + std::to_string(S) + "]"));
      SphereR.push_back(&RT.var("Scene.sphereR[" + std::to_string(S) + "]"));
    }
    for (int L = 0; L < 2; ++L)
      LightI.push_back(&RT.var("Scene.lightI[" + std::to_string(L) + "]"));
    SharedVar &CamFov = RT.var("Camera.fov");
    SharedVar &NextRow = RT.var("WorkPool.nextRow");
    SharedVar &Checksum = RT.var("RayTracer.checksum");
    LockVar &PoolMu = RT.lock("WorkPool.mu");

    bool GuardPool = guardEnabled("pool.mu");

    RT.run([&, NumThreads, NumSpheres, Rows](MonitoredThread &Main) {
      // Build the scene before forking: immutable afterwards.
      for (int S = 0; S < NumSpheres; ++S) {
        Main.write(*SphereX[S], 10 * S + 3);
        Main.write(*SphereR[S], S + 1);
      }
      Main.write(*LightI[0], 80);
      Main.write(*LightI[1], 40);
      Main.write(CamFov, 60);
      Main.write(NextRow, 0);

      std::vector<Tid> Renderers;
      for (int R = 0; R < NumThreads; ++R) {
        Renderers.push_back(Main.fork([&, NumSpheres, Rows](
                                          MonitoredThread &T) {
          for (;;) {
            // WorkPool.nextRow: cursor probe and advance split across two
            // critical sections — duplicate rows under contention.
            int64_t Row;
            {
              AtomicRegion A(T, "WorkPool.nextRow");
              if (GuardPool)
                T.lockAcquire(PoolMu);
              Row = T.read(NextRow);
              if (GuardPool)
                T.lockRelease(PoolMu);
              if (Row < Rows) {
                if (GuardPool)
                  T.lockAcquire(PoolMu);
                T.write(NextRow, T.read(NextRow) + 1);
                if (GuardPool)
                  T.lockRelease(PoolMu);
              }
            }
            if (Row >= Rows)
              return;

            // Scene-inspection battery: mtrt's render inner loop calls
            // many small read-only helpers over the fork-published scene.
            // Each is atomic (the scene is immutable), yet each makes >= 2
            // "racy" reads by lockset reckoning — the methods behind the
            // paper's 27 mtrt false alarms.
            {
              static const char *const Inspect[] = {
                  "Scene.boundingBox", "Scene.lightCount",
                  "Scene.materialOf",  "Camera.aspect",
                  "Scene.normalAt",    "Scene.background",
                  "Scene.ambient",     "Octree.lookup"};
              AtomicRegion A(T, Inspect[Row % 8]);
              int S1 = static_cast<int>(Row % NumSpheres);
              int S2 = static_cast<int>((Row + 1) % NumSpheres);
              int64_t Probe = T.read(*SphereX[S1]) + T.read(*SphereR[S2]) +
                              T.read(*LightI[Row % 2]);
              (void)Probe;
            }

            int64_t RowSum = 0;
            for (int Px = 0; Px < 4; ++Px) {
              int64_t Dir;
              { // Camera.rayFor: fork-published camera reads (FP).
                AtomicRegion A(T, "Camera.rayFor");
                int64_t Fov = T.read(CamFov);
                Dir = (Row * 17 + Px * 31) % (Fov + 1);
              }
              int64_t Hit;
              { // Scene.intersect: walks every sphere (reads, FP).
                AtomicRegion A(T, "Scene.intersect");
                Hit = -1;
                for (int S = 0; S < NumSpheres; ++S) {
                  int64_t X = T.read(*SphereX[S]);
                  int64_t Rad = T.read(*SphereR[S]);
                  if ((Dir - X) * (Dir - X) <= Rad * Rad) {
                    Hit = S;
                    break;
                  }
                }
              }
              { // Scene.shade: light reads (FP).
                AtomicRegion A(T, "Scene.shade");
                int64_t Shade = 0;
                if (Hit >= 0)
                  Shade = T.read(*LightI[0]) + T.read(*LightI[1]) / (Hit + 1);
                RowSum += Shade;
              }
            }

            // RayTracer.updateChecksum: the famous JGF/SPEC checksum bug —
            // a global += with no synchronization.
            {
              AtomicRegion A(T, "RayTracer.updateChecksum");
              T.write(Checksum, T.read(Checksum) + RowSum);
            }
          }
        }));
      }
      for (Tid R : Renderers)
        Main.join(R);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeMtrt() {
  return std::make_unique<MtrtWorkload>();
}

} // namespace velo
