//===- workloads/Multiset.cpp - The Set/Vector example ---------------------===//
//
// Analogue of the `multiset` benchmark and the paper's introductory Set
// example: a Set built on a synchronized Vector. Every Vector method takes
// the vector's own lock, so the program is race-free — yet Set methods that
// make *two* Vector calls are not atomic, exactly the class of bug the
// introduction motivates.
//
//   non-atomic (ground truth):
//     Set.add          if (!contains(x)) add(x)       (check-then-act)
//     Set.remove       if (contains(x)) removeElem(x) (check-then-act)
//     Set.addAll       loop of adds, each its own critical section
//     Set.containsAll  loop of contains calls
//     Set.checkRep     reads the size twice and compares (torn read)
//
//   atomic: Set.contains, Set.size, Set.clear (single Vector call each)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class MultisetWorkload : public Workload {
public:
  const char *name() const override { return "multiset"; }
  const char *description() const override {
    return "Set built on a synchronized Vector (intro's Set.add example)";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Set.add", "Set.remove", "Set.addAll", "Set.containsAll",
            "Set.checkRep"};
  }

  std::vector<std::string> guardSites() const override {
    return {"vector.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 4;
    const int OpsPerWorker = 20 * Scale;
    const int Slots = 8;

    LockVar &VecMu = RT.lock("Vector.mu");
    SharedVar &Count = RT.var("Vector.count");
    std::vector<SharedVar *> Data;
    for (int I = 0; I < Slots; ++I)
      Data.push_back(&RT.var("Vector.data[" + std::to_string(I) + "]"));
    std::vector<SharedVar *> HashOf;
    for (int W = 0; W < NumWorkers + 1; ++W)
      HashOf.push_back(&RT.var("Set.hashScratch[" + std::to_string(W) + "]"));

    bool Guard = guardEnabled("vector.mu");

    // --- The synchronized Vector (each method one critical section) ---
    auto VecContains = [&, Guard](MonitoredThread &T, int64_t X) {
      if (Guard)
        T.lockAcquire(VecMu);
      bool Found = false;
      int64_t N = T.read(Count);
      for (int64_t I = 0; I < N && I < Slots; ++I)
        if (T.read(*Data[I]) == X) {
          Found = true;
          break;
        }
      if (Guard)
        T.lockRelease(VecMu);
      return Found;
    };
    auto VecAdd = [&, Guard](MonitoredThread &T, int64_t X) {
      if (Guard)
        T.lockAcquire(VecMu);
      int64_t N = T.read(Count);
      if (N < Slots) {
        T.write(*Data[N], X);
        T.write(Count, N + 1);
      }
      if (Guard)
        T.lockRelease(VecMu);
    };
    auto VecRemove = [&, Guard](MonitoredThread &T, int64_t X) {
      if (Guard)
        T.lockAcquire(VecMu);
      int64_t N = T.read(Count);
      for (int64_t I = 0; I < N && I < Slots; ++I) {
        if (T.read(*Data[I]) == X) {
          // Shift-down removal, as Vector does.
          for (int64_t J = I; J + 1 < N && J + 1 < Slots; ++J)
            T.write(*Data[J], T.read(*Data[J + 1]));
          T.write(Count, N - 1);
          break;
        }
      }
      if (Guard)
        T.lockRelease(VecMu);
    };
    auto VecSize = [&, Guard](MonitoredThread &T) {
      if (Guard)
        T.lockAcquire(VecMu);
      int64_t N = T.read(Count);
      if (Guard)
        T.lockRelease(VecMu);
      return N;
    };
    auto VecClear = [&, Guard](MonitoredThread &T) {
      if (Guard)
        T.lockAcquire(VecMu);
      T.write(Count, 0);
      if (Guard)
        T.lockRelease(VecMu);
    };

    RT.run([&, NumWorkers, OpsPerWorker](MonitoredThread &Main) {
      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        Workers.push_back(Main.fork([&, OpsPerWorker](MonitoredThread &T) {
          for (int OpIdx = 0; OpIdx < OpsPerWorker; ++OpIdx) {
            int64_t X = static_cast<int64_t>(T.rng().below(6));
            // Hash mixing between Set calls: unannotated, per-thread work
            // (unary transactions; merged away by Figure 4, one node per
            // access under the naive rule — multiset's 218,000 vs 8
            // allocations in Table 1).
            {
              SharedVar &H = *HashOf[T.id() % HashOf.size()];
              for (int K = 0; K < 12; ++K)
                T.write(H, (T.read(H) * 31 + X + K) % 997);
            }
            switch (T.rng().below(8)) {
            case 0:
            case 1:
            case 2: { // Set.add: the motivating bug
              AtomicRegion A(T, "Set.add");
              if (!VecContains(T, X))
                VecAdd(T, X);
              break;
            }
            case 3: { // Set.remove
              AtomicRegion A(T, "Set.remove");
              if (VecContains(T, X))
                VecRemove(T, X);
              break;
            }
            case 4: { // Set.addAll
              AtomicRegion A(T, "Set.addAll");
              for (int64_t V = X; V < X + 2; ++V)
                if (!VecContains(T, V))
                  VecAdd(T, V);
              break;
            }
            case 5: { // Set.containsAll
              AtomicRegion A(T, "Set.containsAll");
              bool All = true;
              for (int64_t V = X; V < X + 2; ++V)
                All = All && VecContains(T, V);
              (void)All;
              break;
            }
            case 6: { // Set.contains / Set.size: atomic single calls
              {
                AtomicRegion A(T, "Set.contains");
                VecContains(T, X);
              }
              {
                AtomicRegion A(T, "Set.size");
                VecSize(T);
              }
              break;
            }
            case 7: { // Set.checkRep: reads size twice without the lock
              AtomicRegion A(T, "Set.checkRep");
              int64_t N1 = T.read(Count);
              int64_t N2 = T.read(Count);
              if (N1 != N2 && T.rng().chance(1, 2)) {
                AtomicRegion B(T, "Set.clear");
                VecClear(T);
              }
              break;
            }
            }
          }
        }));
      }
      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeMultiset() {
  return std::make_unique<MultisetWorkload>();
}

} // namespace velo
