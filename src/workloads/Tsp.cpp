//===- workloads/Tsp.cpp - Branch-and-bound TSP solver ---------------------===//
//
// Analogue of the `tsp` benchmark (von Praun & Gross): a parallel
// branch-and-bound Traveling Salesman solver. Workers pop partial tours from
// a shared stack and expand them; the global minimum tour length is read
// *without* the lock on the hot pruning path — the classic optimization that
// makes most of the solver's methods non-atomic (the paper reports 8
// non-atomic methods in tsp, all real).
//
//   non-atomic (ground truth):
//     Tsp.updateMinTour    unguarded min check, then guarded write (no
//                          re-check): lost-minimum bug
//     Tsp.expandTour       guarded queue ops interleaved with unguarded
//                          reads of the bound
//     Tsp.recordBestPath   bound read outside the lock guarding the path
//     Tsp.stealWork        queue-size check and pop in two critical sections
//     Tsp.addTask          unguarded size read before the guarded push
//     Tsp.visitStats       nodes-visited counter RMW, no lock
//     Tsp.progress         torn read of visited count and current bound
//     Tsp.doneCheck        tasks-remaining check-then-decrement split
//
//   atomic: Tsp.popTask (single critical section), Tsp.init (pre-fork)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class TspWorkload : public Workload {
public:
  const char *name() const override { return "tsp"; }
  const char *description() const override {
    return "parallel branch-and-bound TSP solver with a shared bound";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Tsp.updateMinTour", "Tsp.expandTour", "Tsp.recordBestPath",
            "Tsp.stealWork",     "Tsp.addTask",    "Tsp.visitStats",
            "Tsp.progress",      "Tsp.doneCheck"};
  }

  std::vector<std::string> guardSites() const override {
    return {"queue.mu", "min.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 4;
    const int NumCities = 6;
    const int QueueCap = 16;
    const int Tasks = 16 * Scale;

    LockVar &QueueMu = RT.lock("Tsp.queueMu");
    LockVar &MinMu = RT.lock("Tsp.minMu");
    SharedVar &QueueSize = RT.var("Tsp.queueSize");
    SharedVar &MinTourLen = RT.var("Tsp.minTourLen");
    SharedVar &TasksLeft = RT.var("Tsp.tasksLeft");
    SharedVar &NodesVisited = RT.var("Tsp.nodesVisited");
    std::vector<SharedVar *> Queue, BestPath;
    for (int I = 0; I < QueueCap; ++I)
      Queue.push_back(&RT.var("Tsp.queue[" + std::to_string(I) + "]"));
    for (int I = 0; I < NumCities; ++I)
      BestPath.push_back(&RT.var("Tsp.bestPath[" + std::to_string(I) + "]"));
    // Per-worker tour scratch buffers (effectively thread-local).
    std::vector<SharedVar *> ScratchOf;
    for (int W = 0; W < NumWorkers + 1; ++W)
      ScratchOf.push_back(&RT.var("Tsp.scratch[" + std::to_string(W) + "]"));

    // The distance matrix is immutable after init: plain (unmonitored)
    // data, as RoadRunner's thread-local filtering would treat it.
    std::vector<int> Dist(NumCities * NumCities);

    RT.run([&, NumWorkers, NumCities, QueueCap, Tasks](MonitoredThread &Main) {
      { // Tsp.init: runs before any worker exists.
        AtomicRegion A(Main, "Tsp.init");
        for (int I = 0; I < NumCities; ++I)
          for (int J = 0; J < NumCities; ++J)
            Dist[I * NumCities + J] =
                I == J ? 0 : static_cast<int>(Main.rng().range(3, 30));
        Main.write(MinTourLen, 1'000'000);
        Main.write(TasksLeft, Tasks);
        Main.write(QueueSize, 0);
      }

      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        Workers.push_back(Main.fork([&, NumCities, QueueCap](
                                        MonitoredThread &T) {
          for (;;) {
            // Tsp.doneCheck: tasks-remaining check and decrement split
            // into two critical sections.
            int64_t Left;
            {
              AtomicRegion A(T, "Tsp.doneCheck");
              T.lockAcquire(QueueMu);
              Left = T.read(TasksLeft);
              T.lockRelease(QueueMu);
              if (Left > 0) {
                T.lockAcquire(QueueMu);
                T.write(TasksLeft, T.read(TasksLeft) - 1);
                T.lockRelease(QueueMu);
              }
            }
            if (Left <= 0)
              return;

            // Tsp.addTask: seed a partial tour; the size read happens
            // before taking the lock.
            {
              AtomicRegion A(T, "Tsp.addTask");
              int64_t Size = T.read(QueueSize);
              if (Size < QueueCap) {
                T.lockAcquire(QueueMu);
                int64_t Now = T.read(QueueSize);
                if (Now < QueueCap) {
                  T.write(*Queue[Now], T.rng().below(1000));
                  T.write(QueueSize, Now + 1);
                }
                T.lockRelease(QueueMu);
              }
            }

            // Tsp.expandTour: pop work and expand it, pruning against the
            // bound, which is read without the lock on the hot path.
            int64_t Partial = -1;
            {
              AtomicRegion A(T, "Tsp.expandTour");
              T.lockAcquire(QueueMu);
              int64_t Size = T.read(QueueSize);
              if (Size > 0) {
                Partial = T.read(*Queue[Size - 1]);
                T.write(QueueSize, Size - 1);
              }
              T.lockRelease(QueueMu);
              if (Partial >= 0) {
                // Depth-limited expansion with unguarded bound reads.
                int64_t Len = Partial % 40;
                for (int C = 1; C < NumCities; ++C) {
                  Len += Dist[(C - 1) * NumCities + C];
                  if (Len >= T.read(MinTourLen))
                    break; // pruned against a possibly-stale bound
                }
                Partial = Len;
              }
            }
            if (Partial < 0) {
              T.yield();
              continue;
            }

            // Tour-expansion scratch work: the solver spends most of its
            // time in unannotated code juggling per-thread tour buffers.
            // These operations run *outside* any atomic block — the unary
            // transactions that the naive [INS OUTSIDE] rule allocates a
            // node apiece for and that merging collapses (the source of
            // tsp's >1,000,000 vs 12,000 allocation gap in Table 1).
            {
              SharedVar &Scratch = *ScratchOf[T.id() % ScratchOf.size()];
              for (int K = 0; K < 24; ++K) {
                int64_t Cur = T.read(Scratch);
                T.write(Scratch, (Cur * 7 + Partial + K) % 10007);
              }
            }

            // Tsp.visitStats: global counter RMW with no lock.
            {
              AtomicRegion A(T, "Tsp.visitStats");
              T.write(NodesVisited, T.read(NodesVisited) + 1);
            }

            // Tsp.updateMinTour: check the bound outside the lock, then
            // write it inside *without re-checking* — the lost-minimum bug.
            if (Partial < T.read(MinTourLen)) {
              AtomicRegion A(T, "Tsp.updateMinTour");
              T.lockAcquire(MinMu);
              T.write(MinTourLen, Partial);
              T.lockRelease(MinMu);

              // Tsp.recordBestPath: path guarded, bound re-read unguarded.
              {
                AtomicRegion B(T, "Tsp.recordBestPath");
                int64_t Bound = T.read(MinTourLen);
                T.lockAcquire(MinMu);
                for (int C = 0; C < NumCities; ++C)
                  T.write(*BestPath[C], (Bound + C) % NumCities);
                T.lockRelease(MinMu);
              }
            }

            // Tsp.stealWork: probe a victim's queue size, then pop in a
            // second critical section.
            if (T.rng().chance(1, 4)) {
              AtomicRegion A(T, "Tsp.stealWork");
              T.lockAcquire(QueueMu);
              int64_t Size = T.read(QueueSize);
              T.lockRelease(QueueMu);
              if (Size > 1) {
                T.lockAcquire(QueueMu);
                int64_t Now = T.read(QueueSize);
                if (Now > 0)
                  T.write(QueueSize, Now - 1);
                T.lockRelease(QueueMu);
              }
            }
          }
        }));
      }

      // Tsp.progress: the main thread polls bound and visit count with no
      // locks while workers run.
      for (int R = 0; R < Tasks / 2; ++R) {
        AtomicRegion A(Main, "Tsp.progress");
        int64_t Visited = Main.read(NodesVisited);
        int64_t Bound = Main.read(MinTourLen);
        (void)Visited;
        (void)Bound;
        Main.yield();
      }

      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeTsp() { return std::make_unique<TspWorkload>(); }

} // namespace velo
