//===- workloads/Elevator.cpp - Discrete elevator simulator ---------------===//
//
// Analogue of the `elevator` benchmark (von Praun & Gross): a discrete-event
// simulation with one person-generator thread and several lift threads that
// share per-floor call flags and a global control board.
//
// Synchronization structure mirrors the original: the control board is
// guarded by Controls.mu, per-lift state (position, load) is private to its
// lift thread, and the lifts publish a display value the generator polls.
//
//   non-atomic (ground truth):
//     Controls.claimUp /   check a call in one critical section, claim it in
//     Controls.claimDown   a second one (check-then-act, up and down boards)
//     Lift.board           waiting count read and decrement in separate
//                          critical sections (lost update)
//     Controls.addCall     call flag guarded, waiting counter RMW unguarded
//     Lift.recordStats     global delivered-counter RMW, no lock
//     Elevator.snapshot    unguarded multi-variable scan of lift displays
//
//   atomic: Controls.quiesce, Controls.peekCalls, Controls.peekDown,
//           Controls.rebalance, Lift.move, Lift.doorCycle, Lift.unload
//           (per-lift state is thread-private; each publishes at most one
//           display write per transaction)
//
//   injection sites: controls.peek, controls.rebalance (removing either
//   guard makes the corresponding multi-access method non-atomic under
//   contention — the Section 6 defect-injection study).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class ElevatorWorkload : public Workload {
public:
  const char *name() const override { return "elevator"; }
  const char *description() const override {
    return "discrete-event elevator simulator (von Praun & Gross suite)";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Controls.claimUp",  "Lift.board",       "Controls.addCall",
            "Lift.recordStats",  "Elevator.snapshot", "Controls.claimDown"};
  }

  std::vector<std::string> guardSites() const override {
    return {"controls.peek", "controls.rebalance"};
  }

  void run(Runtime &RT) const override {
    const int NumFloors = 8;
    const int NumLifts = 3;
    const int NumCalls = 24 * Scale;

    LockVar &ControlsMu = RT.lock("Controls.mu");
    std::vector<SharedVar *> UpCall, DownCall, Waiting;
    for (int F = 0; F < NumFloors; ++F) {
      UpCall.push_back(&RT.var("Controls.upCall[" + std::to_string(F) + "]"));
      DownCall.push_back(
          &RT.var("Controls.downCall[" + std::to_string(F) + "]"));
      Waiting.push_back(&RT.var("Floor.waiting[" + std::to_string(F) + "]"));
    }
    std::vector<SharedVar *> Display, LiftPos, LiftLoad;
    for (int L = 0; L < NumLifts; ++L) {
      Display.push_back(&RT.var("Lift.display[" + std::to_string(L) + "]"));
      LiftPos.push_back(&RT.var("Lift.pos[" + std::to_string(L) + "]"));
      LiftLoad.push_back(&RT.var("Lift.load[" + std::to_string(L) + "]"));
    }
    SharedVar &Delivered = RT.var("Stats.delivered");
    SharedVar &CallsLeft = RT.var("Controls.callsLeft");

    RT.run([&, NumFloors, NumLifts, NumCalls](MonitoredThread &Main) {
      Main.write(CallsLeft, NumCalls);

      std::vector<Tid> Lifts;
      for (int L = 0; L < NumLifts; ++L) {
        Lifts.push_back(Main.fork([&, L](MonitoredThread &T) {
          liftThread(T, L, NumFloors, NumLifts, ControlsMu, UpCall, DownCall,
                     Waiting, Display, *LiftPos[L], *LiftLoad[L], Delivered,
                     CallsLeft, /*MaxIters=*/NumCalls * 3);
        }));
      }

      // Person generator: post calls on random floors; poll the display.
      for (int C = 0; C < NumCalls; ++C) {
        int F = static_cast<int>(Main.rng().below(NumFloors));
        // Controls.addCall: the call flag is guarded, but the waiting
        // counter read-modify-write happens outside the lock.
        {
          AtomicRegion A(Main, "Controls.addCall");
          Main.lockAcquire(ControlsMu);
          if (C % 2 == 0)
            Main.write(*UpCall[F], 1);
          else
            Main.write(*DownCall[F], 1);
          Main.lockRelease(ControlsMu);
          Main.write(*Waiting[F], Main.read(*Waiting[F]) + 1);
        }
        if (C % 3 == 0) {
          // Elevator.snapshot: unguarded scan of every lift's display —
          // a torn read of the fleet state.
          AtomicRegion A(Main, "Elevator.snapshot");
          int64_t Sum = 0;
          for (int L = 0; L < NumLifts; ++L)
            Sum += Main.read(*Display[L]);
          (void)Sum;
        }
      }
      for (Tid L : Lifts)
        Main.join(L);
    });
  }

private:
  void liftThread(MonitoredThread &T, int L, int NumFloors, int NumLifts,
                  LockVar &ControlsMu, std::vector<SharedVar *> &UpCall,
                  std::vector<SharedVar *> &DownCall,
                  std::vector<SharedVar *> &Waiting,
                  std::vector<SharedVar *> &Display, SharedVar &Pos,
                  SharedVar &Load, SharedVar &Delivered,
                  SharedVar &CallsLeft, int MaxIters) const {
    int64_t DoorState = 0; // private: 0 closed, 1 open
    // Bounded service loop: rebalancing and re-posted calls can merge two
    // pending calls into one, so CallsLeft alone cannot drive termination.
    for (int Iter = 0; Iter < MaxIters; ++Iter) {
      // Controls.quiesce: are we done early? (atomic: one critical section)
      int64_t Left;
      {
        AtomicRegion A(T, "Controls.quiesce");
        T.lockAcquire(ControlsMu);
        Left = T.read(CallsLeft);
        T.lockRelease(ControlsMu);
      }
      if (Left <= 0)
        return;

      // Controls.peekCalls: scan for a pending call. Atomic while guarded;
      // the injection study removes this guard.
      int Found = -1;
      {
        AtomicRegion A(T, "Controls.peekCalls");
        if (guardEnabled("controls.peek"))
          T.lockAcquire(ControlsMu);
        for (int F = 0; F < NumFloors; ++F) {
          if (T.read(*UpCall[F]) != 0) {
            Found = F;
            break;
          }
        }
        if (guardEnabled("controls.peek"))
          T.lockRelease(ControlsMu);
      }
      bool GoingDown = false;
      if (Found < 0) {
        // Controls.peekDown: scan the down board (atomic: one section).
        AtomicRegion A(T, "Controls.peekDown");
        T.lockAcquire(ControlsMu);
        for (int F = NumFloors - 1; F >= 0; --F) {
          if (T.read(*DownCall[F]) != 0) {
            Found = F;
            GoingDown = true;
            break;
          }
        }
        T.lockRelease(ControlsMu);
      }
      if (Found < 0) {
        // Controls.rebalance: occasionally shift a call between floors to
        // model directional rebalancing (guarded multi-write; second
        // injection site).
        if (T.rng().chance(2, 3)) {
          // Scan the board for any pending call and shift it one floor up
          // (directional rebalancing): a multi-read-multi-write section.
          AtomicRegion A(T, "Controls.rebalance");
          if (guardEnabled("controls.rebalance"))
            T.lockAcquire(ControlsMu);
          for (int F = 0; F < NumFloors; ++F) {
            if (T.read(*UpCall[F]) != 0) {
              T.write(*UpCall[F], 0);
              T.write(*UpCall[(F + 1) % NumFloors], 1);
              break;
            }
          }
          if (guardEnabled("controls.rebalance"))
            T.lockRelease(ControlsMu);
        }
        T.yield();
        continue;
      }

      // Controls.claimUp / claimDown: re-check and claim in a *second*
      // critical section — the classic check-then-act atomicity bug:
      // another lift can claim the same call between the peek and the
      // claim.
      bool Claimed = false;
      {
        std::vector<SharedVar *> &Board = GoingDown ? DownCall : UpCall;
        AtomicRegion A(T, GoingDown ? "Controls.claimDown"
                                    : "Controls.claimUp");
        T.lockAcquire(ControlsMu);
        Claimed = T.read(*Board[Found]) != 0;
        T.lockRelease(ControlsMu);
        if (Claimed) {
          T.lockAcquire(ControlsMu);
          T.write(*Board[Found], 0);
          T.write(CallsLeft, T.read(CallsLeft) - 1);
          T.lockRelease(ControlsMu);
        }
      }
      if (!Claimed)
        continue;

      // Lift.move: travel to the floor. Pos is private to this lift
      // thread; the single Display write publishes the new position, so
      // the method stays self-serializable.
      {
        AtomicRegion A(T, "Lift.move");
        int64_t At = T.read(Pos);
        int Steps = static_cast<int>(At > Found ? At - Found : Found - At);
        for (int S = 0; S < Steps; ++S)
          T.write(Pos, T.read(Pos) + (At > Found ? -1 : 1));
        T.write(*Display[L], Found);
      }

      // Lift.doorCycle: open the doors on arrival (private door state plus
      // one published display write — self-serializable, like Lift.move).
      {
        AtomicRegion A(T, "Lift.doorCycle");
        DoorState = 1;
        T.write(*Display[L], Found * 10 + DoorState); // "doors open" indicator
      }

      // Lift.board: waiting count read in one critical section and
      // decremented in another — lost-update bug under contention.
      {
        AtomicRegion A(T, "Lift.board");
        T.lockAcquire(ControlsMu);
        int64_t W = T.read(*Waiting[Found]);
        T.lockRelease(ControlsMu);
        if (W > 0) {
          T.lockAcquire(ControlsMu);
          T.write(*Waiting[Found], T.read(*Waiting[Found]) - 1);
          T.lockRelease(ControlsMu);
          T.write(Load, T.read(Load) + 1); // private to this lift
        }
      }

      // Lift.unload: close doors, drop passengers (private state plus one
      // published display write; trivially atomic).
      {
        AtomicRegion A(T, "Lift.unload");
        DoorState = 0;
        T.write(Load, 0);
        T.write(*Display[L], Found * 10 + DoorState); // "doors closed" indicator
      }

      // Lift.recordStats: unguarded global counter RMW.
      {
        AtomicRegion A(T, "Lift.recordStats");
        T.write(Delivered, T.read(Delivered) + 1);
      }
      (void)NumLifts;
    }
  }
};

} // namespace

std::unique_ptr<Workload> makeElevator() {
  return std::make_unique<ElevatorWorkload>();
}

} // namespace velo
