//===- workloads/Philo.cpp - Dining philosophers ---------------------------===//
//
// Analogue of the `philo` benchmark: N dining philosophers with one fork
// lock between each pair, ordered acquisition to avoid deadlock, a shared
// servings pot, and a progress monitor.
//
//   non-atomic (ground truth):
//     Philosopher.eat       servings pot RMW under the philosopher's two
//                           fork locks — philosophers across the table hold
//                           disjoint fork pairs, so pot updates interleave
//     Table.reportProgress  unguarded scan of every philosopher's meal
//                           counter (torn read across writers)
//
//   atomic: Philosopher.think (private state), Philosopher.updateStats
//           (stats lock), Table.setUp (runs before the forks start)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class PhiloWorkload : public Workload {
public:
  const char *name() const override { return "philo"; }
  const char *description() const override {
    return "dining philosophers with ordered fork acquisition";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Philosopher.eat", "Table.reportProgress"};
  }

  std::vector<std::string> guardSites() const override {
    return {"stats.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumPhilos = 5;
    const int Meals = 6 * Scale;

    std::vector<LockVar *> Forks;
    std::vector<SharedVar *> MealCount;
    for (int P = 0; P < NumPhilos; ++P) {
      Forks.push_back(&RT.lock("Fork[" + std::to_string(P) + "]"));
      MealCount.push_back(&RT.var("Philosopher.meals[" + std::to_string(P) +
                                  "]"));
    }
    SharedVar &Servings = RT.var("Table.servings");
    SharedVar &TotalMeals = RT.var("Stats.totalMeals");
    LockVar &StatsMu = RT.lock("Stats.mu");

    RT.run([&, NumPhilos, Meals](MonitoredThread &Main) {
      {
        // Table.setUp runs before any philosopher exists: trivially serial.
        AtomicRegion A(Main, "Table.setUp");
        Main.write(Servings, NumPhilos * Meals);
        for (int P = 0; P < NumPhilos; ++P)
          Main.write(*MealCount[P], 0);
      }

      std::vector<Tid> Philos;
      for (int P = 0; P < NumPhilos; ++P) {
        Philos.push_back(Main.fork([&, P, NumPhilos, Meals](
                                       MonitoredThread &T) {
          int Left = P, Right = (P + 1) % NumPhilos;
          // Ordered acquisition prevents deadlock.
          LockVar &First = *Forks[Left < Right ? Left : Right];
          LockVar &Second = *Forks[Left < Right ? Right : Left];
          int64_t Thoughts = 0;
          for (int M = 0; M < Meals; ++M) {
            { // Philosopher.think: private state only.
              AtomicRegion A(T, "Philosopher.think");
              Thoughts += static_cast<int64_t>(T.rng().below(10));
              T.yield();
            }
            { // Philosopher.eat: pot RMW under this pair of forks only.
              AtomicRegion A(T, "Philosopher.eat");
              T.lockAcquire(First);
              T.lockAcquire(Second);
              int64_t Pot = T.read(Servings);
              if (Pot > 0)
                T.write(Servings, Pot - 1);
              T.write(*MealCount[P], T.read(*MealCount[P]) + 1);
              T.lockRelease(Second);
              T.lockRelease(First);
            }
            { // Philosopher.updateStats: global counter under its own lock.
              AtomicRegion A(T, "Philosopher.updateStats");
              if (guardEnabled("stats.mu"))
                T.lockAcquire(StatsMu);
              T.write(TotalMeals, T.read(TotalMeals) + 1);
              if (guardEnabled("stats.mu"))
                T.lockRelease(StatsMu);
            }
          }
          (void)Thoughts;
        }));
      }

      // Table.reportProgress: the monitor scans every meal counter with no
      // locks while philosophers are still eating.
      for (int Round = 0; Round < Meals; ++Round) {
        AtomicRegion A(Main, "Table.reportProgress");
        int64_t Sum = 0;
        for (int P = 0; P < NumPhilos; ++P)
          Sum += Main.read(*MealCount[P]);
        (void)Sum;
        Main.yield();
      }

      for (Tid P : Philos)
        Main.join(P);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makePhilo() {
  return std::make_unique<PhiloWorkload>();
}

} // namespace velo
