//===- workloads/Hedc.cpp - Astrophysics meta-crawler ----------------------===//
//
// Analogue of the `hedc` benchmark (von Praun & Gross): a meta-search tool
// that fans worker threads out over astrophysics archives, merges results
// into a shared table, and supports cancellation — the original hedc is the
// source of a well-known lost-cancellation defect, reproduced here.
//
//   non-atomic (ground truth):
//     Worker.processTask    checks the cancelled flag in one critical
//                           section, publishes its result in another
//                           (the lost-cancellation bug)
//     MetaSearch.cancel     guarded flag write, unguarded cancel-count RMW
//     TaskPool.getTask      size check and pop in two critical sections
//     ResultTable.merge     entry count and payload guarded by *different*
//                           locks, updated in sequence
//     Stats.bump            completed-task counter RMW, no lock
//     MetaSearch.pollStatus torn unguarded scan of table size and stats
//
//   atomic: TaskPool.put, ResultTable.lookup, Worker.fetch (private work)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class HedcWorkload : public Workload {
public:
  const char *name() const override { return "hedc"; }
  const char *description() const override {
    return "meta-crawler over astrophysics archives with cancellation";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Worker.processTask", "MetaSearch.cancel",   "TaskPool.getTask",
            "ResultTable.merge",  "Stats.bump",          "MetaSearch.pollStatus"};
  }

  std::vector<std::string> guardSites() const override {
    return {"pool.mu", "table.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 4;
    const int NumTasks = 12 * Scale;
    const int TableCap = 16;

    LockVar &PoolMu = RT.lock("TaskPool.mu");
    LockVar &TableMu = RT.lock("ResultTable.mu");
    LockVar &CountMu = RT.lock("ResultTable.countMu");
    LockVar &CancelMu = RT.lock("MetaSearch.cancelMu");
    SharedVar &PoolSize = RT.var("TaskPool.size");
    SharedVar &Cancelled = RT.var("MetaSearch.cancelled");
    SharedVar &CancelCount = RT.var("MetaSearch.cancelCount");
    SharedVar &TableCount = RT.var("ResultTable.count");
    SharedVar &Completed = RT.var("Stats.completed");
    // Query plan: written by the front end before the workers fork.
    SharedVar &PlanSources = RT.var("Planner.sources");
    SharedVar &PlanDepth = RT.var("Planner.depth");
    std::vector<SharedVar *> Pool, Table;
    for (int I = 0; I < TableCap; ++I) {
      Pool.push_back(&RT.var("TaskPool.tasks[" + std::to_string(I) + "]"));
      Table.push_back(&RT.var("ResultTable.rows[" + std::to_string(I) + "]"));
    }

    bool GuardPool = guardEnabled("pool.mu");
    bool GuardTable = guardEnabled("table.mu");

    RT.run([&, NumWorkers, NumTasks, TableCap](MonitoredThread &Main) {
      // Publish the query plan before any worker exists.
      Main.write(PlanSources, 0b1011);
      Main.write(PlanDepth, 2);

      // TaskPool.put: seed the pool before forking (single sections).
      for (int I = 0; I < NumTasks && I < TableCap; ++I) {
        AtomicRegion A(Main, "TaskPool.put");
        if (GuardPool)
          Main.lockAcquire(PoolMu);
        int64_t N = Main.read(PoolSize);
        if (N < TableCap) {
          Main.write(*Pool[N], 100 + I);
          Main.write(PoolSize, N + 1);
        }
        if (GuardPool)
          Main.lockRelease(PoolMu);
      }

      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        Workers.push_back(Main.fork([&, TableCap](MonitoredThread &T) {
          for (;;) {
            // TaskPool.getTask: size probe and pop in separate sections.
            int64_t Task = -1;
            {
              AtomicRegion A(T, "TaskPool.getTask");
              if (GuardPool)
                T.lockAcquire(PoolMu);
              int64_t N = T.read(PoolSize);
              if (GuardPool)
                T.lockRelease(PoolMu);
              if (N > 0) {
                if (GuardPool)
                  T.lockAcquire(PoolMu);
                int64_t Now = T.read(PoolSize);
                if (Now > 0) {
                  Task = T.read(*Pool[Now - 1]);
                  T.write(PoolSize, Now - 1);
                }
                if (GuardPool)
                  T.lockRelease(PoolMu);
              }
            }
            if (Task < 0)
              return; // pool drained

            // Planner.chooseArchives: pick which archives to query from
            // the fork-published plan (atomic; lockset-racy reads, so an
            // Atomizer false alarm like the paper's library reads).
            int64_t ArchiveMask;
            {
              AtomicRegion A(T, "Planner.chooseArchives");
              ArchiveMask = T.read(PlanSources) & (Task % 7 + 1);
              ArchiveMask += T.read(PlanDepth);
            }

            // Worker.fetch: simulate archive I/O on private state.
            int64_t Payload = 0;
            {
              AtomicRegion A(T, "Worker.fetch");
              for (int K = 0; K < 4; ++K) {
                Payload += Task * 7 + ArchiveMask % 3 +
                           static_cast<int64_t>(T.rng().below(9));
                T.yield(); // archive latency
              }
            }

            // Worker.processTask: the lost-cancellation bug — cancelled is
            // checked in one critical section, the result published in
            // another, so a cancel can land in between.
            {
              AtomicRegion A(T, "Worker.processTask");
              T.lockAcquire(CancelMu);
              bool IsCancelled = T.read(Cancelled) != 0;
              T.lockRelease(CancelMu);
              if (IsCancelled) {
                // Observed-cancellation counter: unguarded RMW shared with
                // MetaSearch.cancel's own unguarded bump.
                T.write(CancelCount, T.read(CancelCount) + 1);
              }
              if (!IsCancelled) {
                if (GuardTable)
                  T.lockAcquire(TableMu);
                int64_t Row = Task % TableCap;
                T.write(*Table[Row], Payload);
                if (GuardTable)
                  T.lockRelease(TableMu);
              }
            }

            // ResultTable.merge: payload rows and the count are guarded by
            // different locks, updated one after the other.
            {
              AtomicRegion A(T, "ResultTable.merge");
              if (GuardTable)
                T.lockAcquire(TableMu);
              int64_t Row = (Task + 1) % TableCap;
              T.write(*Table[Row], T.read(*Table[Row]) + Payload % 13);
              if (GuardTable)
                T.lockRelease(TableMu);
              T.lockAcquire(CountMu);
              T.write(TableCount, T.read(TableCount) + 1);
              T.lockRelease(CountMu);
            }

            // Stats.bump: unguarded completed-task counter.
            {
              AtomicRegion A(T, "Stats.bump");
              T.write(Completed, T.read(Completed) + 1);
            }

            // ResultTable.lookup: single critical section (atomic).
            {
              AtomicRegion A(T, "ResultTable.lookup");
              if (GuardTable)
                T.lockAcquire(TableMu);
              int64_t V = T.read(*Table[Task % TableCap]);
              (void)V;
              if (GuardTable)
                T.lockRelease(TableMu);
            }
          }
        }));
      }

      // The front-end thread polls status and eventually cancels.
      for (int R = 0; R < NumTasks; ++R) {
        { // MetaSearch.pollStatus: unguarded torn scan.
          AtomicRegion A(Main, "MetaSearch.pollStatus");
          int64_t Rows = Main.read(TableCount);
          int64_t Done = Main.read(Completed);
          (void)Rows;
          (void)Done;
        }
        if (R == NumTasks / 2) {
          // MetaSearch.cancel: flag guarded, cancel counter not.
          AtomicRegion A(Main, "MetaSearch.cancel");
          Main.lockAcquire(CancelMu);
          Main.write(Cancelled, 1);
          Main.lockRelease(CancelMu);
          Main.write(CancelCount, Main.read(CancelCount) + 1);
        }
        Main.yield();
      }

      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeHedc() {
  return std::make_unique<HedcWorkload>();
}

} // namespace velo
