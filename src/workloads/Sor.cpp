//===- workloads/Sor.cpp - Successive over-relaxation ----------------------===//
//
// Analogue of the `sor` benchmark: red-black successive over-relaxation on a
// shared grid, with worker threads sweeping row bands, a spin barrier
// between half-sweeps, and a global residual reduction.
//
// Grid cells are accessed under per-row locks acquired in order, so the
// sweep itself is reducible (and Velodrome-serializable). The three
// non-atomic methods match the paper's count for sor:
//
//   non-atomic (ground truth):
//     Sor.barrier          spin barrier: the method *requires* interleaved
//                          writes by other threads to terminate
//     Sor.reduceResidual   global residual accumulation RMW, no lock
//     Sor.checkConverged   unguarded reads of residual and generation
//
//   atomic: Sor.sweepRow (ordered row locks held across the stencil),
//           Sor.init (pre-fork)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class SorWorkload : public Workload {
public:
  const char *name() const override { return "sor"; }
  const char *description() const override {
    return "red-black SOR with row locks, spin barrier, residual reduction";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Sor.barrier", "Sor.reduceResidual", "Sor.checkConverged"};
  }

  std::vector<std::string> guardSites() const override {
    return {"row.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 3;
    const int Rows = 6; // one band per worker, plus halo rows
    const int Cols = 4;
    const int Iters = 4 * Scale;

    std::vector<SharedVar *> Grid;
    for (int R = 0; R < Rows; ++R)
      for (int C = 0; C < Cols; ++C)
        Grid.push_back(&RT.var("Grid[" + std::to_string(R) + "][" +
                               std::to_string(C) + "]"));
    std::vector<LockVar *> RowMu;
    for (int R = 0; R < Rows; ++R)
      RowMu.push_back(&RT.lock("Grid.rowMu[" + std::to_string(R) + "]"));
    auto Cell = [&](int R, int C) -> SharedVar & {
      return *Grid[R * Cols + C];
    };

    LockVar &BarrierMu = RT.lock("Barrier.mu");
    SharedVar &BarrierCount = RT.var("Barrier.count");
    SharedVar &BarrierGen = RT.var("Barrier.generation");
    SharedVar &Residual = RT.var("Sor.residual");

    bool GuardRows = guardEnabled("row.mu");

    RT.run([&, NumWorkers, Rows, Cols, Iters](MonitoredThread &Main) {
      { // Sor.init: pre-fork grid seeding.
        AtomicRegion A(Main, "Sor.init");
        for (int R = 0; R < Rows; ++R)
          for (int C = 0; C < Cols; ++C)
            Main.write(Cell(R, C), (R * 31 + C * 17) % 97);
        Main.write(BarrierCount, 0);
        Main.write(BarrierGen, 0);
      }

      auto Barrier = [&, NumWorkers](MonitoredThread &T) {
        // Sor.barrier: sense-reversing spin barrier. Inherently
        // non-atomic: it spins on a generation stamp another thread must
        // bump while this method is in flight.
        AtomicRegion A(T, "Sor.barrier");
        T.lockAcquire(BarrierMu);
        int64_t Gen = T.read(BarrierGen);
        int64_t Arrived = T.read(BarrierCount) + 1;
        T.write(BarrierCount, Arrived);
        bool Last = Arrived == NumWorkers;
        if (Last) {
          T.write(BarrierCount, 0);
          T.write(BarrierGen, Gen + 1);
        }
        T.lockRelease(BarrierMu);
        if (!Last)
          while (T.read(BarrierGen) == Gen) // unguarded spin read
            T.yield();
      };

      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        int FirstRow = 1 + (W * (Rows - 2)) / NumWorkers;
        int LastRow = 1 + ((W + 1) * (Rows - 2)) / NumWorkers;
        Workers.push_back(Main.fork([&, FirstRow, LastRow, Cols,
                                     Iters](MonitoredThread &T) {
          for (int It = 0; It < Iters; ++It) {
            for (int Color = 0; Color < 2; ++Color) {
              int64_t LocalResidual = 0;
              for (int R = FirstRow; R < LastRow; ++R) {
                // Sor.sweepRow: take the three involved row locks in
                // order, apply the stencil to cells of this color.
                AtomicRegion A(T, "Sor.sweepRow");
                if (GuardRows) {
                  T.lockAcquire(*RowMu[R - 1]);
                  T.lockAcquire(*RowMu[R]);
                  T.lockAcquire(*RowMu[R + 1]);
                }
                for (int C = 0; C < Cols; ++C) {
                  if ((R + C) % 2 != Color)
                    continue;
                  int64_t Up = T.read(Cell(R - 1, C));
                  int64_t Down = T.read(Cell(R + 1, C));
                  int64_t Left = C > 0 ? T.read(Cell(R, C - 1)) : 0;
                  int64_t Right = C + 1 < Cols ? T.read(Cell(R, C + 1)) : 0;
                  int64_t Old = T.read(Cell(R, C));
                  int64_t New = (Up + Down + Left + Right) / 4;
                  T.write(Cell(R, C), New);
                  LocalResidual += New > Old ? New - Old : Old - New;
                }
                if (GuardRows) {
                  T.lockRelease(*RowMu[R + 1]);
                  T.lockRelease(*RowMu[R]);
                  T.lockRelease(*RowMu[R - 1]);
                }
              }

              { // Sor.reduceResidual: unguarded global accumulation.
                AtomicRegion A(T, "Sor.reduceResidual");
                T.write(Residual, T.read(Residual) + LocalResidual);
              }
              Barrier(T);
            }

            { // Sor.checkConverged: unguarded residual/generation reads.
              AtomicRegion A(T, "Sor.checkConverged");
              int64_t Res = T.read(Residual);
              int64_t Gen = T.read(BarrierGen);
              (void)Res;
              (void)Gen;
            }
          }
        }));
      }
      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeSor() { return std::make_unique<SorWorkload>(); }

} // namespace velo
