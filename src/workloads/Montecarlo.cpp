//===- workloads/Montecarlo.cpp - Monte Carlo pricing (Java Grande) --------===//
//
// Analogue of `montecarlo` from the Java Grande suite: worker threads run
// independent price-path simulations and publish results into a shared
// results vector with global running statistics.
//
//   non-atomic (ground truth):
//     Results.add             size check and append in separate sections
//     MonteCarlo.aggregate    reads the results vector size in one section,
//                             sums entries in another
//     Stats.sumPrice          running sum RMW, no lock
//     Stats.sumSquares        running sum-of-squares RMW, no lock
//     Seeds.next              global seed cursor RMW, no lock
//     MonteCarlo.progress     torn unguarded scan (count vs sum)
//
//   atomic: MonteCarlo.simulate (private path generation),
//           Results.count (single section)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class MontecarloWorkload : public Workload {
public:
  const char *name() const override { return "montecarlo"; }
  const char *description() const override {
    return "Java Grande Monte Carlo option pricing with shared statistics";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Results.add",      "MonteCarlo.aggregate", "Stats.sumPrice",
            "Stats.sumSquares", "Seeds.next",           "MonteCarlo.progress",
            "Stats.variance"};
  }

  std::vector<std::string> guardSites() const override {
    return {"results.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 4;
    const int Runs = 8 * Scale;
    const int Cap = 32;

    LockVar &ResultsMu = RT.lock("Results.mu");
    SharedVar &ResultsCount = RT.var("Results.count");
    SharedVar &SumPrice = RT.var("Stats.sumPrice");
    SharedVar &SumSquares = RT.var("Stats.sumSquares");
    SharedVar &SeedCursor = RT.var("Seeds.cursor");
    std::vector<SharedVar *> Results;
    for (int I = 0; I < Cap; ++I)
      Results.push_back(&RT.var("Results.data[" + std::to_string(I) + "]"));

    bool Guard = guardEnabled("results.mu");

    RT.run([&, NumWorkers, Runs, Cap](MonitoredThread &Main) {
      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        Workers.push_back(Main.fork([&, Runs, Cap](MonitoredThread &T) {
          for (int R = 0; R < Runs; ++R) {
            // Seeds.next: global seed cursor bumped with no lock.
            int64_t Seed;
            {
              AtomicRegion A(T, "Seeds.next");
              Seed = T.read(SeedCursor);
              T.write(SeedCursor, Seed + 1);
            }

            // MonteCarlo.simulate: private path generation (atomic).
            int64_t Price = 0;
            {
              AtomicRegion A(T, "MonteCarlo.simulate");
              int64_t S = Seed * 2654435761u % 1000 + 1;
              for (int Step = 0; Step < 6; ++Step) {
                S = (S * 1103515245 + 12345) % 100000;
                Price += S % 200 - 100;
              }
              if (Price < 0)
                Price = -Price;
            }

            // Results.add: capacity check and append in two sections.
            {
              AtomicRegion A(T, "Results.add");
              if (Guard)
                T.lockAcquire(ResultsMu);
              int64_t N = T.read(ResultsCount);
              if (Guard)
                T.lockRelease(ResultsMu);
              if (N < Cap) {
                if (Guard)
                  T.lockAcquire(ResultsMu);
                int64_t Now = T.read(ResultsCount);
                if (Now < Cap) {
                  T.write(*Results[Now], Price);
                  T.write(ResultsCount, Now + 1);
                }
                if (Guard)
                  T.lockRelease(ResultsMu);
              }
            }

            // Stats.sumPrice / Stats.sumSquares: unguarded running sums.
            {
              AtomicRegion A(T, "Stats.sumPrice");
              T.write(SumPrice, T.read(SumPrice) + Price);
            }
            {
              AtomicRegion A(T, "Stats.sumSquares");
              T.write(SumSquares, T.read(SumSquares) + Price * Price);
            }

            // Stats.variance: reads both running sums with no lock — a
            // torn pair (E[X^2] from one instant, E[X] from another).
            if (R % 3 == 0) {
              AtomicRegion A(T, "Stats.variance");
              int64_t Sq = T.read(SumSquares);
              int64_t Mean = T.read(SumPrice);
              (void)(Sq - Mean * Mean);
            }
          }
        }));
      }

      // The coordinator polls progress and aggregates concurrently.
      for (int R = 0; R < Runs; ++R) {
        { // MonteCarlo.progress: torn unguarded scan.
          AtomicRegion A(Main, "MonteCarlo.progress");
          int64_t Done = Main.read(ResultsCount);
          int64_t Sum = Main.read(SumPrice);
          (void)(Done + Sum);
        }
        { // MonteCarlo.aggregate: size in one section, sum in another.
          AtomicRegion A(Main, "MonteCarlo.aggregate");
          if (Guard)
            Main.lockAcquire(ResultsMu);
          int64_t N = Main.read(ResultsCount);
          if (Guard)
            Main.lockRelease(ResultsMu);
          int64_t Sum = 0;
          if (Guard)
            Main.lockAcquire(ResultsMu);
          for (int64_t I = 0; I < N && I < Cap; ++I)
            Sum += Main.read(*Results[I]);
          if (Guard)
            Main.lockRelease(ResultsMu);
          (void)Sum;
        }
        { // Results.count: single critical section (atomic).
          AtomicRegion A(Main, "Results.count");
          if (Guard)
            Main.lockAcquire(ResultsMu);
          Main.read(ResultsCount);
          if (Guard)
            Main.lockRelease(ResultsMu);
        }
        Main.yield();
      }

      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeMontecarlo() {
  return std::make_unique<MontecarloWorkload>();
}

} // namespace velo
