//===- workloads/Moldyn.cpp - Molecular dynamics (Java Grande) -------------===//
//
// Analogue of `moldyn` from the Java Grande suite: N-body molecular
// dynamics. Each thread owns a partition of particles; force contributions
// onto *other* threads' particles are accumulated into shared force slots,
// the per-step energy is reduced globally, and steps are separated by the
// same spin barrier idiom as sor.
//
//   non-atomic (ground truth):
//     Moldyn.accumForces   cross-partition force slot += with no lock
//     Moldyn.reduceEnergy  global energy RMW, no lock
//     Moldyn.barrier       spin barrier (requires interleaving)
//     Moldyn.updateStats   interaction-counter RMW, no lock
//
//   atomic: Moldyn.moveParticles (own partition only), Moldyn.init
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class MoldynWorkload : public Workload {
public:
  const char *name() const override { return "moldyn"; }
  const char *description() const override {
    return "Java Grande molecular dynamics with shared force accumulation";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Moldyn.accumForces", "Moldyn.reduceEnergy", "Moldyn.barrier",
            "Moldyn.updateStats"};
  }

  std::vector<std::string> guardSites() const override {
    return {"force.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumThreads = 3;
    const int Particles = 9; // 3 per thread
    const int Steps = 3 * Scale;

    std::vector<SharedVar *> PosX, Force;
    for (int P = 0; P < Particles; ++P) {
      PosX.push_back(&RT.var("Particle.x[" + std::to_string(P) + "]"));
      Force.push_back(&RT.var("Particle.force[" + std::to_string(P) + "]"));
    }
    SharedVar &Energy = RT.var("Moldyn.energy");
    SharedVar &Interactions = RT.var("Moldyn.interactions");
    LockVar &BarrierMu = RT.lock("Barrier.mu");
    SharedVar &BarrierCount = RT.var("Barrier.count");
    SharedVar &BarrierGen = RT.var("Barrier.generation");
    LockVar &ForceMu = RT.lock("Force.mu");

    bool GuardForce = guardEnabled("force.mu");
    (void)GuardForce; // the base program ships *without* the force lock —
                      // that is the accumForces bug; the injection study
                      // instead removes guards from correct workloads.

    RT.run([&, NumThreads, Particles, Steps](MonitoredThread &Main) {
      { // Moldyn.init (pre-fork).
        AtomicRegion A(Main, "Moldyn.init");
        for (int P = 0; P < Particles; ++P) {
          Main.write(*PosX[P], P * 13 % 50);
          Main.write(*Force[P], 0);
        }
        Main.write(BarrierCount, 0);
        Main.write(BarrierGen, 0);
      }

      auto Barrier = [&, NumThreads](MonitoredThread &T) {
        AtomicRegion A(T, "Moldyn.barrier");
        T.lockAcquire(BarrierMu);
        int64_t Gen = T.read(BarrierGen);
        int64_t Arrived = T.read(BarrierCount) + 1;
        T.write(BarrierCount, Arrived);
        bool Last = Arrived == NumThreads;
        if (Last) {
          T.write(BarrierCount, 0);
          T.write(BarrierGen, Gen + 1);
        }
        T.lockRelease(BarrierMu);
        if (!Last)
          while (T.read(BarrierGen) == Gen)
            T.yield();
      };

      std::vector<Tid> Threads;
      int PerThread = Particles / NumThreads;
      for (int W = 0; W < NumThreads; ++W) {
        int First = W * PerThread, Last = (W + 1) * PerThread;
        Threads.push_back(Main.fork([&, First, Last, Particles,
                                     Steps](MonitoredThread &T) {
          for (int Step = 0; Step < Steps; ++Step) {
            // Force phase: each thread computes pair interactions for its
            // particles and accumulates into *both* particles' slots.
            for (int I = First; I < Last; ++I) {
              int64_t Xi = T.read(*PosX[I]);
              for (int J = 0; J < Particles; ++J) {
                if (J == I)
                  continue;
                // Moldyn.accumForces: the cross-partition += is unguarded
                // (ForceMu exists in the code base but is not used on this
                // path — the original benchmark's defect).
                AtomicRegion A(T, "Moldyn.accumForces");
                int64_t Xj = T.read(*PosX[J]);
                int64_t F = (Xi - Xj) % 7;
                T.write(*Force[I], T.read(*Force[I]) + F);
                T.write(*Force[J], T.read(*Force[J]) - F);
              }
            }

            { // Moldyn.updateStats: unguarded interaction counter.
              AtomicRegion A(T, "Moldyn.updateStats");
              T.write(Interactions,
                      T.read(Interactions) + (Last - First) * Particles);
            }

            Barrier(T);

            // Move phase: strictly own partition (atomic).
            int64_t LocalEnergy = 0;
            for (int I = First; I < Last; ++I) {
              AtomicRegion A(T, "Moldyn.moveParticles");
              int64_t F = T.read(*Force[I]);
              int64_t X = T.read(*PosX[I]);
              T.write(*PosX[I], X + F % 5);
              T.write(*Force[I], 0);
              LocalEnergy += F * F;
            }

            { // Moldyn.reduceEnergy: unguarded global reduction.
              AtomicRegion A(T, "Moldyn.reduceEnergy");
              T.write(Energy, T.read(Energy) + LocalEnergy);
            }

            Barrier(T);
          }
        }));
      }
      for (Tid W : Threads)
        Main.join(W);
    });
    (void)ForceMu;
  }
};

} // namespace

std::unique_ptr<Workload> makeMoldyn() {
  return std::make_unique<MoldynWorkload>();
}

} // namespace velo
