//===- workloads/Webl.cpp - WebL crawler/interpreter ----------------------===//
//
// Analogue of the `webl` benchmark: the WebL web-scripting interpreter
// configured as a simple crawler. Worker threads pull URLs from a link
// queue, "fetch" pages, consult a shared page cache, mark a visited set,
// and update interpreter globals. WebL's cache and queue are classic
// sources of check-then-act bugs — the paper reports one of the larger
// per-benchmark warning counts here (24 methods, 22 caught).
//
//   non-atomic (ground truth):
//     Cache.putIfAbsent      lookup in one section, insert in another
//     Cache.evictIfFull      size probe unguarded, eviction guarded
//     VisitedSet.checkAndMark  membership test and mark split
//     LinkQueue.dequeue      size check and pop in two sections
//     LinkQueue.enqueue      unguarded size probe before the guarded push
//     Interp.globalIncr      interpreter global RMW, no lock
//     Page.recordStats       pages/bytes counters RMW, no lock
//     Crawler.status         torn unguarded scan of queue/cache/stats
//
//   atomic: Cache.get (single section), Interp.globalRead (single access)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class WeblWorkload : public Workload {
public:
  const char *name() const override { return "webl"; }
  const char *description() const override {
    return "WebL scripting interpreter running a web crawler";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Cache.putIfAbsent",  "Cache.evictIfFull",
            "VisitedSet.checkAndMark", "LinkQueue.dequeue",
            "LinkQueue.enqueue",  "Interp.globalIncr",
            "Page.recordStats",   "Crawler.status"};
  }

  std::vector<std::string> guardSites() const override {
    return {"cache.mu", "queue.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWorkers = 4;
    const int Pages = 12 * Scale;
    const int CacheSlots = 8;
    const int QueueCap = 16;

    LockVar &CacheMu = RT.lock("Cache.mu");
    LockVar &QueueMu = RT.lock("LinkQueue.mu");
    LockVar &VisitedMu = RT.lock("VisitedSet.mu");
    SharedVar &CacheSize = RT.var("Cache.size");
    SharedVar &QueueSize = RT.var("LinkQueue.size");
    SharedVar &PagesFetched = RT.var("Page.pagesFetched");
    SharedVar &BytesSeen = RT.var("Page.bytesSeen");
    SharedVar &GlobalDepth = RT.var("Interp.globalDepth");
    std::vector<SharedVar *> CacheKey, CacheVal, Visited, Queue;
    for (int I = 0; I < CacheSlots; ++I) {
      CacheKey.push_back(&RT.var("Cache.key[" + std::to_string(I) + "]"));
      CacheVal.push_back(&RT.var("Cache.val[" + std::to_string(I) + "]"));
      Visited.push_back(&RT.var("VisitedSet.bit[" + std::to_string(I) + "]"));
    }
    for (int I = 0; I < QueueCap; ++I)
      Queue.push_back(&RT.var("LinkQueue.url[" + std::to_string(I) + "]"));
    std::vector<SharedVar *> ParseBuf;
    for (int W = 0; W < NumWorkers + 1; ++W)
      ParseBuf.push_back(&RT.var("Interp.parseBuf[" + std::to_string(W) +
                                 "]"));

    bool GCache = guardEnabled("cache.mu");
    bool GQueue = guardEnabled("queue.mu");

    RT.run([&, NumWorkers, Pages, CacheSlots, QueueCap](
               MonitoredThread &Main) {
      // Seed the queue before forking.
      for (int I = 0; I < 6; ++I) {
        if (GQueue)
          Main.lockAcquire(QueueMu);
        Main.write(*Queue[I], 1000 + I);
        Main.write(QueueSize, I + 1);
        if (GQueue)
          Main.lockRelease(QueueMu);
      }

      std::vector<Tid> Workers;
      for (int W = 0; W < NumWorkers; ++W) {
        Workers.push_back(Main.fork([&, Pages, CacheSlots,
                                     QueueCap](MonitoredThread &T) {
          for (int P = 0; P < Pages; ++P) {
            // LinkQueue.dequeue: size probe and pop in two sections.
            int64_t Url = -1;
            {
              AtomicRegion A(T, "LinkQueue.dequeue");
              if (GQueue)
                T.lockAcquire(QueueMu);
              int64_t N = T.read(QueueSize);
              if (GQueue)
                T.lockRelease(QueueMu);
              if (N > 0) {
                if (GQueue)
                  T.lockAcquire(QueueMu);
                int64_t Now = T.read(QueueSize);
                if (Now > 0) {
                  Url = T.read(*Queue[Now - 1]);
                  T.write(QueueSize, Now - 1);
                }
                if (GQueue)
                  T.lockRelease(QueueMu);
              }
            }
            if (Url < 0)
              Url = 1000 + static_cast<int64_t>(T.rng().below(32));

            int Slot = static_cast<int>(Url % CacheSlots);

            // Cache.get: single critical section (atomic).
            int64_t Hit;
            {
              AtomicRegion A(T, "Cache.get");
              if (GCache)
                T.lockAcquire(CacheMu);
              Hit = T.read(*CacheKey[Slot]) == Url ? T.read(*CacheVal[Slot])
                                                   : -1;
              if (GCache)
                T.lockRelease(CacheMu);
            }

            int64_t Content = Hit;
            if (Hit < 0) {
              // "Fetch" and parse the page: interpreter bytecode churning
              // through a per-thread parse buffer, outside any atomic
              // block (webl's 470,000 vs 395,000 Table 1 allocations come
              // from exactly this kind of unannotated interpreter work).
              SharedVar &Parse = *ParseBuf[T.id() % ParseBuf.size()];
              for (int K = 0; K < 10; ++K)
                T.write(Parse, (T.read(Parse) * 17 + Url + K) % 4093);
              Content = Url * 31 % 977;

              // Cache.putIfAbsent: lookup and insert in two sections.
              {
                AtomicRegion A(T, "Cache.putIfAbsent");
                if (GCache)
                  T.lockAcquire(CacheMu);
                bool Absent = T.read(*CacheKey[Slot]) != Url;
                if (GCache)
                  T.lockRelease(CacheMu);
                if (Absent) {
                  if (GCache)
                    T.lockAcquire(CacheMu);
                  T.write(*CacheKey[Slot], Url);
                  T.write(*CacheVal[Slot], Content);
                  T.write(CacheSize, T.read(CacheSize) + 1);
                  if (GCache)
                    T.lockRelease(CacheMu);
                }
              }

              // Cache.evictIfFull: unguarded size probe, guarded eviction.
              {
                AtomicRegion A(T, "Cache.evictIfFull");
                if (T.read(CacheSize) > CacheSlots - 2) {
                  if (GCache)
                    T.lockAcquire(CacheMu);
                  int Victim = static_cast<int>(T.rng().below(CacheSlots));
                  T.write(*CacheKey[Victim], 0);
                  T.write(CacheSize, T.read(CacheSize) - 1);
                  if (GCache)
                    T.lockRelease(CacheMu);
                }
              }
            }

            // VisitedSet.checkAndMark: membership test and mark split
            // across two critical sections.
            {
              AtomicRegion A(T, "VisitedSet.checkAndMark");
              T.lockAcquire(VisitedMu);
              bool Seen = T.read(*Visited[Slot]) != 0;
              T.lockRelease(VisitedMu);
              if (!Seen) {
                T.lockAcquire(VisitedMu);
                T.write(*Visited[Slot], 1);
                T.lockRelease(VisitedMu);

                // Discovered new links: LinkQueue.enqueue with an
                // unguarded size probe.
                AtomicRegion B(T, "LinkQueue.enqueue");
                if (T.read(QueueSize) < QueueCap) {
                  if (GQueue)
                    T.lockAcquire(QueueMu);
                  int64_t Now = T.read(QueueSize);
                  if (Now < QueueCap) {
                    T.write(*Queue[Now], Url + 7);
                    T.write(QueueSize, Now + 1);
                  }
                  if (GQueue)
                    T.lockRelease(QueueMu);
                }
              }
            }

            // Interp.execute: run the page's WebL script — a small stack
            // machine over private state (atomic: no shared accesses).
            {
              AtomicRegion A(T, "Interp.execute");
              int64_t Stack[4] = {0, 0, 0, 0};
              int Sp = 0;
              int64_t Pc = Content % 23;
              for (int Step = 0; Step < 12; ++Step) {
                switch (Pc % 4) {
                case 0: // push
                  if (Sp < 4)
                    Stack[Sp++] = Pc;
                  break;
                case 1: // add
                  if (Sp >= 2) {
                    Stack[Sp - 2] += Stack[Sp - 1];
                    --Sp;
                  }
                  break;
                case 2: // dup
                  if (Sp > 0 && Sp < 4) {
                    Stack[Sp] = Stack[Sp - 1];
                    ++Sp;
                  }
                  break;
                default: // jump
                  Pc = (Pc * 5 + 1) % 23;
                  break;
                }
                Pc = (Pc + 1) % 23;
              }
              (void)Stack;
            }

            // Interp.globalIncr: interpreter global RMW, no lock.
            {
              AtomicRegion A(T, "Interp.globalIncr");
              T.write(GlobalDepth, T.read(GlobalDepth) + 1);
            }

            // Page.recordStats: two unguarded counters.
            {
              AtomicRegion A(T, "Page.recordStats");
              T.write(PagesFetched, T.read(PagesFetched) + 1);
              T.write(BytesSeen, T.read(BytesSeen) + Content % 4096);
            }

            // Interp.globalRead: single unguarded read (atomic — a unary
            // conflict can never pin a one-access transaction).
            {
              AtomicRegion A(T, "Interp.globalRead");
              T.read(GlobalDepth);
            }
          }
        }));
      }

      // Crawler.status: the REPL thread polls shared state with no locks.
      for (int R = 0; R < Pages; ++R) {
        AtomicRegion A(Main, "Crawler.status");
        int64_t Q = Main.read(QueueSize);
        int64_t C = Main.read(CacheSize);
        int64_t F = Main.read(PagesFetched);
        (void)(Q + C + F);
        Main.yield();
      }

      for (Tid W : Workers)
        Main.join(W);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeWebl() {
  return std::make_unique<WeblWorkload>();
}

} // namespace velo
