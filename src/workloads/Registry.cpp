//===- workloads/Registry.cpp - Workload registry -------------------------===//

#include "workloads/Workload.h"

namespace velo {

std::vector<std::unique_ptr<Workload>> makeAllWorkloads() {
  std::vector<std::unique_ptr<Workload>> Out;
  Out.push_back(makeElevator());
  Out.push_back(makeHedc());
  Out.push_back(makeTsp());
  Out.push_back(makeSor());
  Out.push_back(makeJbb());
  Out.push_back(makeMtrt());
  Out.push_back(makeMoldyn());
  Out.push_back(makeMontecarlo());
  Out.push_back(makeRaytracer());
  Out.push_back(makeColt());
  Out.push_back(makePhilo());
  Out.push_back(makeRaja());
  Out.push_back(makeMultiset());
  Out.push_back(makeWebl());
  Out.push_back(makeJigsaw());
  return Out;
}

std::unique_ptr<Workload> makeWorkload(const std::string &Name) {
  for (std::unique_ptr<Workload> &W : makeAllWorkloads())
    if (Name == W->name())
      return std::move(W);
  return nullptr;
}

} // namespace velo
