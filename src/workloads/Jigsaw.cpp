//===- workloads/Jigsaw.cpp - Jigsaw web server -----------------------------===//
//
// Analogue of `jigsaw`, W3C's Java web server, configured (as in the paper)
// to serve a fixed number of pages to a crawler. The largest benchmark and
// the largest warning count in Table 2 (55 methods flagged by the Atomizer,
// 44 confirmed by Velodrome): a server is a pile of small shared services —
// connection pool, resource cache, session table, logger, statistics,
// configuration — each with its own small atomicity bugs.
//
//   non-atomic (ground truth):
//     ConnPool.acquire        free-list probe and claim in two sections
//     ConnPool.release        free count RMW split from slot write
//     ResourceCache.lookupOrLoad   check-then-load
//     ResourceCache.revalidate     staleness probe unguarded, refresh guarded
//     SessionTable.createIfAbsent  check-then-create
//     SessionTable.touch      last-used stamp RMW, no lock
//     SessionTable.expireScan unguarded scan with guarded eviction
//     Logger.append           cursor bump and slot write in two sections
//     Logger.rotateCheck      size probe unguarded, reset guarded
//     Stats.hit               hit counter RMW, no lock
//     Stats.bytes             byte counter RMW, no lock
//     Config.reload           multi-field write, second field unguarded
//     Server.healthCheck      torn unguarded scan across services
//     Auth.cacheToken         token check and install in two sections
//     Mime.lookupOrInfer      unguarded check-then-init of the MIME cache
//
//   atomic: SessionTable.lookup, Config.readLimit, Auth.checkCredentials,
//           Handler.serve (single sections / private work);
//   atomic but Atomizer-flagged: VirtualHost.route (fork-published reads)
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class JigsawWorkload : public Workload {
public:
  const char *name() const override { return "jigsaw"; }
  const char *description() const override {
    return "W3C Jigsaw-style web server serving a fixed crawl";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"ConnPool.acquire",         "ConnPool.release",
            "ResourceCache.lookupOrLoad", "ResourceCache.revalidate",
            "SessionTable.createIfAbsent", "SessionTable.touch",
            "SessionTable.expireScan",  "Logger.append",
            "Logger.rotateCheck",       "Stats.hit",
            "Stats.bytes",              "Config.reload",
            "Server.healthCheck",       "Auth.cacheToken",
            "Mime.lookupOrInfer"};
  }

  std::vector<std::string> guardSites() const override {
    return {"cache.mu", "session.mu", "logger.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumHandlers = 4;
    const int Requests = 10 * Scale;
    const int PoolSlots = 4;
    const int CacheSlots = 6;
    const int Sessions = 6;
    const int LogCap = 32;

    LockVar &PoolMu = RT.lock("ConnPool.mu");
    LockVar &CacheMu = RT.lock("ResourceCache.mu");
    LockVar &SessionMu = RT.lock("SessionTable.mu");
    LockVar &LoggerMu = RT.lock("Logger.mu");
    LockVar &ConfigMu = RT.lock("Config.mu");

    SharedVar &PoolFree = RT.var("ConnPool.free");
    SharedVar &LogCursor = RT.var("Logger.cursor");
    SharedVar &HitCount = RT.var("Stats.hits");
    SharedVar &ByteCount = RT.var("Stats.bytes");
    SharedVar &CfgLimit = RT.var("Config.limit");
    SharedVar &CfgTimeout = RT.var("Config.timeout");
    // Virtual-host table: written once before the handlers fork.
    SharedVar &VHostCount = RT.var("VirtualHost.count");
    SharedVar &VHostDefault = RT.var("VirtualHost.default");
    LockVar &AuthMu = RT.lock("Auth.mu");
    std::vector<SharedVar *> AuthToken, AuthUser, MimeKey, MimeType;
    const int AuthSlots = 4, MimeSlots = 4;
    for (int I = 0; I < AuthSlots; ++I) {
      AuthToken.push_back(&RT.var("Auth.token[" + std::to_string(I) + "]"));
      AuthUser.push_back(&RT.var("Auth.user[" + std::to_string(I) + "]"));
    }
    for (int I = 0; I < MimeSlots; ++I) {
      MimeKey.push_back(&RT.var("Mime.key[" + std::to_string(I) + "]"));
      MimeType.push_back(&RT.var("Mime.type[" + std::to_string(I) + "]"));
    }

    std::vector<SharedVar *> PoolBusy, CacheKey, CacheBody, CacheStale,
        SessionId, SessionUsed, LogSlot;
    for (int I = 0; I < PoolSlots; ++I)
      PoolBusy.push_back(&RT.var("ConnPool.busy[" + std::to_string(I) + "]"));
    for (int I = 0; I < CacheSlots; ++I) {
      CacheKey.push_back(
          &RT.var("ResourceCache.key[" + std::to_string(I) + "]"));
      CacheBody.push_back(
          &RT.var("ResourceCache.body[" + std::to_string(I) + "]"));
      CacheStale.push_back(
          &RT.var("ResourceCache.stale[" + std::to_string(I) + "]"));
    }
    for (int I = 0; I < Sessions; ++I) {
      SessionId.push_back(
          &RT.var("SessionTable.id[" + std::to_string(I) + "]"));
      SessionUsed.push_back(
          &RT.var("SessionTable.used[" + std::to_string(I) + "]"));
    }
    for (int I = 0; I < LogCap; ++I)
      LogSlot.push_back(&RT.var("Logger.slot[" + std::to_string(I) + "]"));

    bool GCache = guardEnabled("cache.mu");
    bool GSession = guardEnabled("session.mu");
    bool GLogger = guardEnabled("logger.mu");

    RT.run([&, NumHandlers, Requests, PoolSlots, CacheSlots, Sessions,
            LogCap](MonitoredThread &Main) {
      Main.write(PoolFree, PoolSlots);
      Main.write(CfgLimit, 100);
      Main.write(CfgTimeout, 30);
      Main.write(VHostCount, 3); // fork-published, immutable afterwards
      Main.write(VHostDefault, 1);

      std::vector<Tid> Handlers;
      for (int H = 0; H < NumHandlers; ++H) {
        Handlers.push_back(Main.fork([&, Requests, PoolSlots, CacheSlots,
                                      Sessions, LogCap](MonitoredThread &T) {
          for (int Req = 0; Req < Requests; ++Req) {
            int64_t Url = 2000 + static_cast<int64_t>(T.rng().below(24));
            int Slot = static_cast<int>(Url % CacheSlots);
            int Sess = static_cast<int>(Url % Sessions);

            // ConnPool.acquire: probe the free count in one section, claim
            // a slot in another.
            int Conn = -1;
            {
              AtomicRegion A(T, "ConnPool.acquire");
              T.lockAcquire(PoolMu);
              int64_t Free = T.read(PoolFree);
              T.lockRelease(PoolMu);
              if (Free > 0) {
                T.lockAcquire(PoolMu);
                for (int I = 0; I < PoolSlots; ++I) {
                  if (T.read(*PoolBusy[I]) == 0) {
                    T.write(*PoolBusy[I], 1);
                    T.write(PoolFree, T.read(PoolFree) - 1);
                    Conn = I;
                    break;
                  }
                }
                T.lockRelease(PoolMu);
              }
            }
            if (Conn < 0) {
              T.yield();
              continue;
            }

            // Config.readLimit: single critical section (atomic).
            int64_t Limit;
            {
              AtomicRegion A(T, "Config.readLimit");
              T.lockAcquire(ConfigMu);
              Limit = T.read(CfgLimit);
              T.lockRelease(ConfigMu);
            }

            // VirtualHost.route: fork-published host-table reads — atomic
            // (immutable data) but lockset-racy, so an Atomizer false
            // alarm, like jbb's config readers.
            int VHost;
            {
              AtomicRegion A(T, "VirtualHost.route");
              int64_t Hosts = T.read(VHostCount);
              int64_t Fallback = T.read(VHostDefault);
              VHost = static_cast<int>(Hosts > 0 ? Url % Hosts : Fallback);
              (void)VHost;
            }

            // Auth.checkCredentials: guarded single section (atomic).
            int ASlot = static_cast<int>(Url % AuthSlots);
            bool Authed;
            {
              AtomicRegion A(T, "Auth.checkCredentials");
              T.lockAcquire(AuthMu);
              Authed = T.read(*AuthToken[ASlot]) == Url;
              T.lockRelease(AuthMu);
            }

            // Auth.cacheToken: the token check and the token+user install
            // are separate critical sections — a second session can
            // install between them (check-then-act).
            if (!Authed) {
              AtomicRegion A(T, "Auth.cacheToken");
              T.lockAcquire(AuthMu);
              bool Empty = T.read(*AuthToken[ASlot]) == 0;
              T.lockRelease(AuthMu);
              if (Empty || T.rng().chance(1, 4)) {
                T.lockAcquire(AuthMu);
                T.write(*AuthToken[ASlot], Url);
                T.write(*AuthUser[ASlot], Url % 97);
                T.lockRelease(AuthMu);
              }
            }

            // Mime.lookupOrInfer: unguarded check-then-init of the MIME
            // cache (small, hot, and wrong — a classic).
            {
              AtomicRegion A(T, "Mime.lookupOrInfer");
              int MSlot = static_cast<int>(Url % MimeSlots);
              if (T.read(*MimeKey[MSlot]) != Url) {
                T.write(*MimeKey[MSlot], Url);
                T.write(*MimeType[MSlot], Url % 7);
              }
            }

            // ResourceCache.lookupOrLoad: check-then-load.
            int64_t Body;
            {
              AtomicRegion A(T, "ResourceCache.lookupOrLoad");
              if (GCache)
                T.lockAcquire(CacheMu);
              bool Hit = T.read(*CacheKey[Slot]) == Url;
              Body = Hit ? T.read(*CacheBody[Slot]) : -1;
              if (GCache)
                T.lockRelease(CacheMu);
              if (!Hit) {
                int64_t Loaded = Url * 13 % 509; // disk read (private)
                if (GCache)
                  T.lockAcquire(CacheMu);
                T.write(*CacheKey[Slot], Url);
                T.write(*CacheBody[Slot], Loaded);
                T.write(*CacheStale[Slot], 0);
                if (GCache)
                  T.lockRelease(CacheMu);
                Body = Loaded;
              }
            }

            // ResourceCache.revalidate: unguarded staleness probe.
            {
              AtomicRegion A(T, "ResourceCache.revalidate");
              if (T.read(*CacheStale[Slot]) != 0) {
                if (GCache)
                  T.lockAcquire(CacheMu);
                T.write(*CacheStale[Slot], 0);
                T.write(*CacheBody[Slot], Body + 1);
                if (GCache)
                  T.lockRelease(CacheMu);
              }
            }

            // SessionTable.createIfAbsent + lookup + touch.
            {
              AtomicRegion A(T, "SessionTable.createIfAbsent");
              if (GSession)
                T.lockAcquire(SessionMu);
              bool Absent = T.read(*SessionId[Sess]) != Url;
              if (GSession)
                T.lockRelease(SessionMu);
              if (Absent) {
                if (GSession)
                  T.lockAcquire(SessionMu);
                T.write(*SessionId[Sess], Url);
                if (GSession)
                  T.lockRelease(SessionMu);
              }
            }
            {
              AtomicRegion A(T, "SessionTable.lookup");
              if (GSession)
                T.lockAcquire(SessionMu);
              T.read(*SessionId[Sess]);
              if (GSession)
                T.lockRelease(SessionMu);
            }
            {
              // SessionTable.touch: unguarded last-used stamp RMW.
              AtomicRegion A(T, "SessionTable.touch");
              T.write(*SessionUsed[Sess], T.read(*SessionUsed[Sess]) + 1);
            }

            // Handler.serve: private work shaping the response, plus one
            // unguarded timeout read (a single access cannot be pinned,
            // but it gives Config.reload's unguarded timeout write a
            // conflicting partner).
            int64_t Bytes;
            {
              AtomicRegion A(T, "Handler.serve");
              int64_t Timeout = T.read(CfgTimeout);
              Bytes = (Body % Limit) + 64 + Timeout % 8;
              for (int K = 0; K < 2; ++K)
                Bytes += (Bytes * 7) % 31;
            }

            // Logger.append: cursor bump and slot write in two sections.
            {
              AtomicRegion A(T, "Logger.append");
              if (GLogger)
                T.lockAcquire(LoggerMu);
              int64_t Cur = T.read(LogCursor);
              T.write(LogCursor, (Cur + 1) % LogCap);
              if (GLogger)
                T.lockRelease(LoggerMu);
              if (GLogger)
                T.lockAcquire(LoggerMu);
              T.write(*LogSlot[Cur % LogCap], Url);
              if (GLogger)
                T.lockRelease(LoggerMu);
            }

            // Logger.rotateCheck: unguarded cursor probe, guarded reset.
            {
              AtomicRegion A(T, "Logger.rotateCheck");
              if (T.read(LogCursor) >= LogCap - 2) {
                if (GLogger)
                  T.lockAcquire(LoggerMu);
                T.write(LogCursor, 0);
                if (GLogger)
                  T.lockRelease(LoggerMu);
              }
            }

            // Stats.hit / Stats.bytes: unguarded counters.
            {
              AtomicRegion A(T, "Stats.hit");
              T.write(HitCount, T.read(HitCount) + 1);
            }
            {
              AtomicRegion A(T, "Stats.bytes");
              T.write(ByteCount, T.read(ByteCount) + Bytes);
            }

            // ConnPool.release: slot write and free-count bump in two
            // critical sections.
            {
              AtomicRegion A(T, "ConnPool.release");
              T.lockAcquire(PoolMu);
              T.write(*PoolBusy[Conn], 0);
              T.lockRelease(PoolMu);
              T.lockAcquire(PoolMu);
              T.write(PoolFree, T.read(PoolFree) + 1);
              T.lockRelease(PoolMu);
            }
          }
        }));
      }

      // The admin thread reloads config, scans sessions, health-checks.
      for (int R = 0; R < Requests; ++R) {
        switch (R % 3) {
        case 0: { // Config.reload: second field written unguarded.
          AtomicRegion A(Main, "Config.reload");
          Main.lockAcquire(ConfigMu);
          Main.write(CfgLimit, 100 + R);
          Main.lockRelease(ConfigMu);
          Main.write(CfgTimeout, 30 + R % 5);
          break;
        }
        case 1: { // SessionTable.expireScan: unguarded scan + eviction.
          AtomicRegion A(Main, "SessionTable.expireScan");
          for (int S = 0; S < Sessions; ++S) {
            if (Main.read(*SessionUsed[S]) > 8) {
              if (GSession)
                Main.lockAcquire(SessionMu);
              Main.write(*SessionId[S], 0);
              if (GSession)
                Main.lockRelease(SessionMu);
              Main.write(*SessionUsed[S], 0);
            }
          }
          break;
        }
        default: { // Server.healthCheck: torn scan across services.
          AtomicRegion A(Main, "Server.healthCheck");
          int64_t Hits = Main.read(HitCount);
          int64_t Free = Main.read(PoolFree);
          int64_t Cur = Main.read(LogCursor);
          (void)(Hits + Free + Cur);
          break;
        }
        }
        Main.yield();
      }

      for (Tid H : Handlers)
        Main.join(H);
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeJigsaw() {
  return std::make_unique<JigsawWorkload>();
}

} // namespace velo
