//===- workloads/Jbb.cpp - Business-object order processing ----------------===//
//
// Analogue of SPEC JBB2000: warehouse threads process orders against
// per-warehouse district and stock state (each guarded by the warehouse
// lock), with a company-wide ledger and a phase flag driven by the main
// thread.
//
// This workload reproduces the paper's observation that jbb is where the
// Atomizer's false alarms concentrate (42 of them): configuration is
// published to workers through the fork edge and the phase flag through a
// bare write — both perfectly serializable, both invisible to a lockset
// analysis. Velodrome sees the fork and write-read edges and stays silent.
//
//   non-atomic (ground truth):
//     Company.recordRevenue   ledger RMW, no lock
//     District.nextOrderId    id read and increment in two sections
//     Stock.replenishCheck    low-stock check in one section, reorder in
//                             another (check-then-act)
//     Company.auditTotals     unguarded torn scan of every warehouse ytd
//     Customer.payment        balance read unguarded, write under the lock
//
//   atomic but Atomizer-flagged (false alarms):
//     Worker.checkPhase, Worker.loadConfig — racy-looking reads ordered by
//     fork edges / the phase-flag write-read edge
//
//   atomic: Warehouse.newOrder, Warehouse.delivery, District.report
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace velo {
namespace {

class JbbWorkload : public Workload {
public:
  const char *name() const override { return "jbb"; }
  const char *description() const override {
    return "SPEC JBB-style warehouse order processing with phase control";
  }
  const char *sourceFile() const override { return __FILE__; }

  std::vector<std::string> nonAtomicMethods() const override {
    return {"Company.recordRevenue", "District.nextOrderId",
            "Stock.replenishCheck", "Company.auditTotals",
            "Customer.payment",     "Customer.creditScreen"};
  }

  std::vector<std::string> guardSites() const override {
    return {"warehouse.mu"};
  }

  void run(Runtime &RT) const override {
    const int NumWarehouses = 4;
    const int Orders = 10 * Scale;
    const int Items = 6;

    std::vector<LockVar *> WhMu;
    std::vector<SharedVar *> Ytd, NextOrder, CustBalance, PendingOrders;
    std::vector<std::vector<SharedVar *>> Stock(NumWarehouses);
    for (int W = 0; W < NumWarehouses; ++W) {
      std::string Ws = std::to_string(W);
      WhMu.push_back(&RT.lock("Warehouse.mu[" + Ws + "]"));
      Ytd.push_back(&RT.var("Warehouse.ytd[" + Ws + "]"));
      NextOrder.push_back(&RT.var("District.nextOrder[" + Ws + "]"));
      CustBalance.push_back(&RT.var("Customer.balance[" + Ws + "]"));
      PendingOrders.push_back(&RT.var("Warehouse.pending[" + Ws + "]"));
      for (int I = 0; I < Items; ++I)
        Stock[W].push_back(
            &RT.var("Stock.qty[" + Ws + "][" + std::to_string(I) + "]"));
    }
    SharedVar &Ledger = RT.var("Company.ledger");
    SharedVar &Phase = RT.var("Company.phase");
    SharedVar &CfgItems = RT.var("Config.items");
    SharedVar &CfgPayRate = RT.var("Config.payRate");

    bool Guard = guardEnabled("warehouse.mu");

    RT.run([&, NumWarehouses, Orders, Items](MonitoredThread &Main) {
      // Configuration written once by main, before forking: the workers'
      // unguarded reads are ordered by the fork edges (race-free), but a
      // lockset analysis cannot see that.
      Main.write(CfgItems, Items);
      Main.write(CfgPayRate, 7);
      Main.write(Phase, 0); // 0 = ramp-up, 1 = measurement

      std::vector<Tid> Warehouses;
      for (int W = 0; W < NumWarehouses; ++W) {
        Warehouses.push_back(Main.fork([&, W, Orders](MonitoredThread &T) {
          int64_t MyItems, PayRate;
          { // Worker.loadConfig: fork-published reads (Atomizer FP).
            AtomicRegion A(T, "Worker.loadConfig");
            MyItems = T.read(CfgItems);
            PayRate = T.read(CfgPayRate);
          }
          for (int O = 0; O < Orders; ++O) {
            { // Worker.checkPhase: flag-handoff read plus a fork-published
              // config read — two "racy" accesses for a lockset analysis
              // (Atomizer FP), but fully ordered by the write-read and fork
              // edges, so Velodrome-clean.
              AtomicRegion A(T, "Worker.checkPhase");
              int64_t Ph = T.read(Phase);
              int64_t Limit = T.read(CfgItems);
              (void)(Ph + Limit);
            }

            // Read-only helper battery over fork-published configuration
            // and the phase flag: atomic (ordered by fork and write-read
            // edges) but all lockset-racy — the bulk of jbb's Atomizer
            // false alarms in the paper (42 of them).
            {
              static const char *const Helpers[] = {
                  "Worker.priceOf",    "Worker.taxRate",
                  "Worker.creditCheck", "Worker.catalogScan",
                  "Worker.warmup",     "Worker.auditConfig"};
              AtomicRegion A(T, Helpers[O % 6]);
              int64_t Probe = T.read(CfgItems) + T.read(CfgPayRate);
              if (O % 2 == 0)
                Probe += T.read(Phase);
              (void)Probe;
            }

            // District.nextOrderId: read in one critical section,
            // increment in a second one — duplicate order ids.
            int64_t OrderId;
            {
              AtomicRegion A(T, "District.nextOrderId");
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              OrderId = T.read(*NextOrder[W]);
              if (Guard)
                T.lockRelease(*WhMu[W]);
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              T.write(*NextOrder[W], OrderId + 1);
              if (Guard)
                T.lockRelease(*WhMu[W]);
            }

            // Warehouse.newOrder: stock updates in one critical section.
            int64_t Total = 0;
            {
              AtomicRegion A(T, "Warehouse.newOrder");
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              for (int L = 0; L < 3; ++L) {
                int Item = static_cast<int>(T.rng().below(MyItems));
                int64_t Qty = T.read(*Stock[W][Item]);
                T.write(*Stock[W][Item], Qty - 1);
                Total += OrderId % 50 + L;
              }
              T.write(*Ytd[W], T.read(*Ytd[W]) + Total);
              T.write(*PendingOrders[W], T.read(*PendingOrders[W]) + 1);
              if (Guard)
                T.lockRelease(*WhMu[W]);
            }

            // Stock.replenishCheck: low-stock probe and the reorder are
            // separate critical sections on the same warehouse.
            {
              AtomicRegion A(T, "Stock.replenishCheck");
              int Item = static_cast<int>(T.rng().below(MyItems));
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              int64_t Qty = T.read(*Stock[W][Item]);
              if (Guard)
                T.lockRelease(*WhMu[W]);
              if (Qty < 5) {
                if (Guard)
                  T.lockAcquire(*WhMu[W]);
                T.write(*Stock[W][Item], Qty + 20);
                if (Guard)
                  T.lockRelease(*WhMu[W]);
              }
            }

            // Customer.payment: pays a customer of a *random* warehouse;
            // the balance read escapes the critical section, so concurrent
            // payments to the same customer lose updates.
            {
              AtomicRegion A(T, "Customer.payment");
              int V = static_cast<int>(T.rng().below(NumWarehouses));
              int64_t Bal = T.read(*CustBalance[V]); // unguarded read
              if (Guard)
                T.lockAcquire(*WhMu[V]);
              T.write(*CustBalance[V], Bal + PayRate);
              if (Guard)
                T.lockRelease(*WhMu[V]);
            }

            // Company.recordRevenue: company ledger RMW, no lock.
            {
              AtomicRegion A(T, "Company.recordRevenue");
              T.write(Ledger, T.read(Ledger) + Total);
            }

            // Warehouse.delivery: pop the oldest undelivered order and
            // credit the warehouse — one critical section (atomic).
            if (O % 3 == 0) {
              AtomicRegion A(T, "Warehouse.delivery");
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              int64_t Pending = T.read(*PendingOrders[W]);
              if (Pending > 0) {
                T.write(*PendingOrders[W], Pending - 1);
                T.write(*Ytd[W], T.read(*Ytd[W]) + 1);
              }
              if (Guard)
                T.lockRelease(*WhMu[W]);
            }

            // Warehouse.orderStatus: read-only scan of this warehouse's
            // order book under its lock (atomic) — the TPC-C-style
            // OrderStatus transaction.
            if (O % 4 == 1) {
              AtomicRegion A(T, "Warehouse.orderStatus");
              if (Guard)
                T.lockAcquire(*WhMu[W]);
              int64_t Status =
                  T.read(*PendingOrders[W]) * 100 + T.read(*NextOrder[W]);
              (void)Status;
              if (Guard)
                T.lockRelease(*WhMu[W]);
            }

            // Customer.creditScreen: the fuzzy-read query (TPC-C's
            // StockLevel is the analogous "allowed to be inconsistent"
            // transaction): probe a customer's balance twice without the
            // warehouse lock to estimate payment velocity. A concurrent
            // guarded payment between the two reads pins this transaction
            // — genuinely non-atomic, and deliberately confined to the
            // balance variable, whose only guarded accessors are
            // single-write payment sections (which stay atomic).
            if (O % 4 == 2) {
              AtomicRegion A(T, "Customer.creditScreen");
              int V = static_cast<int>(T.rng().below(NumWarehouses));
              int64_t Before = T.read(*CustBalance[V]);
              int64_t After = T.read(*CustBalance[V]);
              (void)(After - Before);
            }
          }
        }));
      }

      // Main thread: flips the phase, audits totals while warehouses run.
      for (int R = 0; R < Orders; ++R) {
        if (R == 2)
          Main.write(Phase, 1); // the flag handoff (plain write)
        { // Company.auditTotals: unguarded torn scan of every warehouse.
          AtomicRegion A(Main, "Company.auditTotals");
          int64_t Sum = 0;
          for (int W = 0; W < NumWarehouses; ++W)
            Sum += Main.read(*Ytd[W]);
          (void)Sum;
        }
        Main.yield();
      }

      for (Tid W : Warehouses)
        Main.join(W);

      { // District.report: post-join aggregation (atomic via join edges).
        AtomicRegion A(Main, "District.report");
        int64_t Sum = 0;
        for (int W = 0; W < NumWarehouses; ++W)
          Sum += Main.read(*NextOrder[W]);
        (void)Sum;
      }
    });
  }
};

} // namespace

std::unique_ptr<Workload> makeJbb() { return std::make_unique<JbbWorkload>(); }

} // namespace velo
