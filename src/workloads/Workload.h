//===- workloads/Workload.h - Benchmark workload interface ------*- C++ -*-===//
//
// C++ analogues of the paper's 15 Java benchmarks (Section 6), written
// against the monitored runtime. Each workload reproduces the *shape* of the
// original: its threading structure, synchronization idioms, the ratio of
// lock traffic to data traffic, and — crucially — its inventory of atomicity
// bugs (check-then-act, unsynchronized read-modify-write, barrier/flag
// handoffs, fork/join aggregation).
//
// Each workload declares:
//   - nonAtomicMethods(): the ground-truth set of methods that are genuinely
//     not atomic (a violating schedule exists). Velodrome warnings must
//     always land inside this set (zero false alarms — Table 2); Atomizer
//     warnings outside it are counted as false alarms.
//   - guardSites(): named synchronization sites the defect-injection
//     framework (Section 6's study) can disable one at a time.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_WORKLOADS_WORKLOAD_H
#define VELO_WORKLOADS_WORKLOAD_H

#include "rt/Runtime.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace velo {

/// Base class for benchmark workloads.
class Workload {
public:
  virtual ~Workload() = default;

  /// Benchmark name as in Table 1 ("elevator", "tsp", ...).
  virtual const char *name() const = 0;

  /// One-line description of the program being modeled.
  virtual const char *description() const = 0;

  /// Path of the implementing source file (for the Size column of Table 1).
  virtual const char *sourceFile() const = 0;

  /// Ground truth: method labels that are genuinely non-atomic.
  virtual std::vector<std::string> nonAtomicMethods() const = 0;

  /// Synchronization sites the injection framework may disable.
  virtual std::vector<std::string> guardSites() const { return {}; }

  /// Execute the workload in the given runtime (creates its variables,
  /// locks, and threads; returns when all threads have finished).
  virtual void run(Runtime &RT) const = 0;

  /// Work multiplier: tests use 1, the benchmark harness larger values.
  int Scale = 1;

  /// Guard sites disabled by the injection framework.
  std::set<std::string> DisabledGuards;

protected:
  /// Is the named guard site still enabled?
  bool guardEnabled(const std::string &Site) const {
    return DisabledGuards.find(Site) == DisabledGuards.end();
  }
};

/// Factories, one per benchmark (defined in the per-workload .cpp files).
std::unique_ptr<Workload> makeElevator();
std::unique_ptr<Workload> makeHedc();
std::unique_ptr<Workload> makeTsp();
std::unique_ptr<Workload> makeSor();
std::unique_ptr<Workload> makeJbb();
std::unique_ptr<Workload> makeMtrt();
std::unique_ptr<Workload> makeMoldyn();
std::unique_ptr<Workload> makeMontecarlo();
std::unique_ptr<Workload> makeRaytracer();
std::unique_ptr<Workload> makeColt();
std::unique_ptr<Workload> makePhilo();
std::unique_ptr<Workload> makeRaja();
std::unique_ptr<Workload> makeMultiset();
std::unique_ptr<Workload> makeWebl();
std::unique_ptr<Workload> makeJigsaw();

/// All fifteen benchmarks, in Table 1 order.
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/// Look up one benchmark by name (null if unknown).
std::unique_ptr<Workload> makeWorkload(const std::string &Name);

} // namespace velo

#endif // VELO_WORKLOADS_WORKLOAD_H
