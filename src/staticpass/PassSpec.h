//===- staticpass/PassSpec.h - Static pass selection ------------*- C++ -*-===//
//
// Names and bitmask selection for the static trace-analysis passes. The
// pipeline has four passes (Section 5.2 of the paper motivates the first
// two as the "thread-local" and "read-only" filters that make Velodrome
// practical; redundant-access elimination follows from the observation
// that within one transaction only the first read and first write of a
// variable can contribute new happens-before edges):
//
//   escape     thread-local variable elimination
//   readonly   never-written variable elimination
//   redundant  in-transaction repeated-access collapsing
//   lockset    lock-discipline inference (lint only; drops nothing)
//
// A PassMask selects which passes run; "--reduce=all" enables everything,
// "--reduce=escape,redundant" a subset.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_PASSSPEC_H
#define VELO_STATICPASS_PASSSPEC_H

#include <cstdint>
#include <string>

namespace velo {

/// The static passes, in pipeline order.
enum class PassId : uint8_t {
  Escape = 0,
  ReadOnly = 1,
  Redundant = 2,
  Lockset = 3,
};

inline constexpr unsigned NumPasses = 4;

/// Canonical lower-case name used in --reduce specs and stats lines.
const char *passName(PassId P);

/// One-line human description for help text and reports.
const char *passSummary(PassId P);

/// Bitmask over PassId.
struct PassMask {
  uint8_t Bits = 0;

  static PassMask all() { return PassMask{(1u << NumPasses) - 1}; }
  static PassMask none() { return PassMask{0}; }

  bool has(PassId P) const {
    return (Bits & (1u << static_cast<unsigned>(P))) != 0;
  }
  void set(PassId P) { Bits |= 1u << static_cast<unsigned>(P); }
  bool any() const { return Bits != 0; }

  bool operator==(const PassMask &O) const { return Bits == O.Bits; }
  bool operator!=(const PassMask &O) const { return Bits != O.Bits; }
};

/// Parse a --reduce spec: "all", "none", or a comma-separated list of pass
/// names. Returns false with ErrorOut set on an unknown name or empty list
/// element.
bool parsePassSpec(const std::string &Spec, PassMask &Out,
                   std::string &ErrorOut);

/// Canonical spelling of a mask ("all", "none", or a comma list), stable
/// across runs so it can be embedded in checkpoints and compared.
std::string passSpecString(PassMask M);

} // namespace velo

#endif // VELO_STATICPASS_PASSSPEC_H
