//===- staticpass/ReductionFilter.cpp - Sound online event filter ---------===//

#include "staticpass/ReductionFilter.h"

#include <algorithm>
#include <vector>

namespace velo {

std::string PassStats::summary() const {
  std::string S;
  for (unsigned I = 0; I < NumPasses; ++I) {
    PassId P = static_cast<PassId>(I);
    if (P == PassId::Lockset)
      continue;
    S += std::string(passName(P)) + "=" + std::to_string(Dropped[I]) + " ";
  }
  S += "dropped=" + std::to_string(droppedTotal()) + "/" +
       std::to_string(Input);
  return S;
}

void PassStats::serialize(SnapshotWriter &W) const {
  W.u64(Input);
  W.u64(Kept);
  for (uint64_t D : Dropped)
    W.u64(D);
}

bool PassStats::deserialize(SnapshotReader &R) {
  Input = R.u64();
  Kept = R.u64();
  for (uint64_t &D : Dropped)
    D = R.u64();
  return !R.failed();
}

bool ReductionFilter::keep(const Event &E) {
  ++Stats.Input;
  if (E.Thread >= Threads.size())
    Threads.resize(E.Thread + 1);
  ThreadState &TS = Threads[E.Thread];
  bool FirstOfThread = !TS.SawAny;
  TS.SawAny = true;

  if (E.Kind == Op::Acquire)
    Sim.onAcquire(E.Thread, E.lock());
  else if (E.Kind == Op::Release)
    Sim.onRelease(E.Thread, E.lock());

  if (!E.isAccess()) {
    // Sync and transaction-marker events are never dropped; they carry
    // the happens-before structure every back-end keys on.
    ++TS.KeptSeq;
    ++Stats.Kept;
    return true;
  }

  // Hot path: always-drop classes never consult the engine or the run
  // table — an Eraser variable's state depends only on accesses to that
  // variable, and for these classes it is never read (docs/STATIC.md,
  // "engine exactness").
  VarId X = E.var();
  VarClass C = Plan.classOf(X);
  bool RunVar = C == VarClass::Shared ||
                (C == VarClass::ThreadLocal && Plan.hasInTxn(X));
  if (!RunVar) {
    if (!FirstOfThread) {
      ++Stats.Dropped[static_cast<unsigned>(
          C == VarClass::ReadOnly ? PassId::ReadOnly : PassId::Escape)];
      return false;
    }
    ++TS.KeptSeq;
    ++Stats.Kept;
    return true;
  }

  bool IsWrite = E.Kind == Op::Write;
  bool Unprotected = Sim.accessIsUnprotected(E.Thread, X, IsWrite);
  if (X >= Runs.size())
    Runs.resize(X + 1);
  VarRun &Run = Runs[X];

  if (!FirstOfThread) {
    bool RunRule =
        (C == VarClass::ThreadLocal && Plan.Mask.has(PassId::Escape)) ||
        (C == VarClass::Shared && Plan.Mask.has(PassId::Redundant));
    if (RunRule && runLive(Run, TS, E.Thread) && !Unprotected &&
        !Run.LastKeptUnprotected && (!IsWrite || Run.HasKeptWrite)) {
      ++Stats.Dropped[static_cast<unsigned>(
          C == VarClass::ThreadLocal ? PassId::Escape : PassId::Redundant)];
      return false;
    }
  }

  // Kept access: start or extend this variable's run.
  if (!runLive(Run, TS, E.Thread)) {
    Run = VarRun{};
    Run.Thread = E.Thread;
    Run.Live = true;
    Run.KeptSeqAtStart = TS.KeptSeq;
  }
  ++Run.KeptAccesses;
  Run.HasKeptWrite = Run.HasKeptWrite || IsWrite;
  Run.LastKeptUnprotected = Unprotected;
  ++TS.KeptSeq;
  ++Stats.Kept;
  return true;
}

void ReductionFilter::serialize(SnapshotWriter &W) const {
  Plan.serialize(W);
  Stats.serialize(W);
  Sim.serialize(W);

  uint64_t NumThreads = 0;
  for (const ThreadState &TS : Threads)
    if (TS.SawAny)
      ++NumThreads;
  W.u64(NumThreads);
  for (Tid T = 0; T < Threads.size(); ++T) {
    const ThreadState &TS = Threads[T];
    if (!TS.SawAny)
      continue;
    W.u32(T);
    W.u64(TS.KeptSeq);
    W.boolean(TS.SawAny);
  }

  uint64_t NumRuns = 0;
  for (const VarRun &Run : Runs)
    if (Run.KeptAccesses != 0)
      ++NumRuns;
  W.u64(NumRuns);
  for (VarId X = 0; X < Runs.size(); ++X) {
    const VarRun &Run = Runs[X];
    if (Run.KeptAccesses == 0)
      continue;
    W.u32(X);
    W.u32(Run.Thread);
    W.boolean(Run.Live);
    W.u64(Run.KeptSeqAtStart);
    W.u64(Run.KeptAccesses);
    W.boolean(Run.HasKeptWrite);
    W.boolean(Run.LastKeptUnprotected);
  }
}

bool ReductionFilter::deserialize(SnapshotReader &R) {
  Threads.clear();
  Runs.clear();
  if (!Plan.deserialize(R) || !Stats.deserialize(R) || !Sim.deserialize(R))
    return false;
  uint64_t NumThreads = R.u64();
  for (uint64_t I = 0; I < NumThreads && !R.failed(); ++I) {
    Tid T = R.u32();
    if (T >= Threads.size())
      Threads.resize(T + 1);
    ThreadState &TS = Threads[T];
    TS.KeptSeq = R.u64();
    TS.SawAny = R.boolean();
  }
  uint64_t NumVars = R.u64();
  for (uint64_t I = 0; I < NumVars && !R.failed(); ++I) {
    VarId X = R.u32();
    if (X >= Runs.size())
      Runs.resize(X + 1);
    VarRun &Run = Runs[X];
    Run.Thread = R.u32();
    Run.Live = R.boolean();
    Run.KeptSeqAtStart = R.u64();
    Run.KeptAccesses = R.u64();
    Run.HasKeptWrite = R.boolean();
    Run.LastKeptUnprotected = R.boolean();
  }
  return !R.failed();
}

} // namespace velo
