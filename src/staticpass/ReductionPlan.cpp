//===- staticpass/ReductionPlan.cpp - Per-variable drop plan --------------===//

#include "staticpass/ReductionPlan.h"

namespace velo {

void ReductionPlan::serialize(SnapshotWriter &W) const {
  W.u8(Mask.Bits);
  W.u64(Class.size());
  for (uint8_t C : Class)
    W.u8(C);
  W.u64(InTxn.size());
  for (uint8_t B : InTxn)
    W.u8(B);
}

bool ReductionPlan::deserialize(SnapshotReader &R) {
  Mask.Bits = R.u8();
  Class.clear();
  InTxn.clear();
  uint64_t N = R.u64();
  for (uint64_t I = 0; I < N && !R.failed(); ++I)
    Class.push_back(R.u8());
  uint64_t M = R.u64();
  for (uint64_t I = 0; I < M && !R.failed(); ++I)
    InTxn.push_back(R.u8());
  return !R.failed();
}

} // namespace velo
