//===- staticpass/Classifier.cpp - Whole-trace fact gathering -------------===//

#include "staticpass/Classifier.h"

namespace velo {

void TraceClassifier::onEvent(const Event &E) {
  ++Facts.Events;
  switch (E.Kind) {
  case Op::Acquire:
    Facts.Locks.onAcquire(E.Thread, E.lock());
    return;
  case Op::Release:
    Facts.Locks.onRelease(E.Thread, E.lock());
    return;
  case Op::Begin:
    if (E.Thread >= TxnDepth.size())
      TxnDepth.resize(E.Thread + 1, 0);
    ++TxnDepth[E.Thread];
    return;
  case Op::End:
    if (E.Thread < TxnDepth.size() && TxnDepth[E.Thread] > 0)
      --TxnDepth[E.Thread];
    return;
  case Op::Fork:
  case Op::Join:
    return;
  case Op::Read:
  case Op::Write: {
    ++Facts.Accesses;
    bool IsWrite = E.Kind == Op::Write;
    VarId X = E.var();
    if (X >= Facts.Vars.size())
      Facts.Vars.resize(X + 1);
    VarFacts &F = Facts.Vars[X];
    bool FirstAccess = !F.Seen;
    if (FirstAccess) {
      F.Seen = true;
      F.FirstThread = E.Thread;
      ++Facts.SeenVars;
    }
    if (E.Thread != F.FirstThread)
      F.Multi = true;
    if (!F.Multi)
      ++F.PrefixAccesses;
    if (IsWrite)
      ++F.Writes;
    else
      ++F.Reads;
    if (E.Thread < TxnDepth.size() && TxnDepth[E.Thread] > 0)
      F.HasInTxnAccess = true;
    // While a variable is single-threaded its engine state is Exclusive
    // with Owner == accessor, and the engine returns false without
    // touching any state — so those calls are skipped wholesale. Only the
    // first access (Virgin -> Exclusive) and everything after a second
    // thread shows up must be fed.
    if (F.Multi || FirstAccess)
      if (Facts.Locks.accessIsUnprotected(E.Thread, X, IsWrite))
        F.EverUnprotected = true;
    return;
  }
  }
}

} // namespace velo
