//===- staticpass/ReductionPlan.h - Per-variable drop plan ------*- C++ -*-===//
//
// The product of the classification passes: a per-variable class that the
// online ReductionFilter enforces during replay (pass B). Classes encode
// how aggressively a variable's accesses may be dropped without changing
// any back-end's verdict or warning bytes:
//
//   ReadOnly     never written and never unprotected — every access after
//                the owning thread's first event can go
//   ThreadLocal  a single accessor thread; with no in-transaction access
//                every non-first access can go, otherwise only run-covered
//                repeats (see ReductionFilter.h)
//   Shared       multi-thread — only the redundant pass applies, via the
//                same run-covered rule
//
// The plan serializes into checkpoints so --resume can skip pass A.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_REDUCTIONPLAN_H
#define VELO_STATICPASS_REDUCTIONPLAN_H

#include "analysis/Snapshot.h"
#include "events/Event.h"
#include "staticpass/PassSpec.h"

#include <vector>

namespace velo {

enum class VarClass : uint8_t { Shared = 0, ThreadLocal = 1, ReadOnly = 2 };

/// Dense per-variable classification (indexed by VarId). Variables beyond
/// the table — impossible after a whole-trace sweep, but defended against —
/// default to the conservative Shared-with-transactions class.
struct ReductionPlan {
  PassMask Mask;
  std::vector<uint8_t> Class;
  std::vector<uint8_t> InTxn;

  VarClass classOf(VarId X) const {
    return X < Class.size() ? static_cast<VarClass>(Class[X])
                            : VarClass::Shared;
  }
  bool hasInTxn(VarId X) const {
    return X < InTxn.size() ? InTxn[X] != 0 : true;
  }

  void serialize(SnapshotWriter &W) const;
  bool deserialize(SnapshotReader &R);
};

} // namespace velo

#endif // VELO_STATICPASS_REDUCTIONPLAN_H
