//===- staticpass/LintReport.h - Lock-discipline lint -----------*- C++ -*-===//
//
// The structured product of the lockset pass: per variable, its final
// Eraser state, the surviving candidate guard locks, and the reduction-
// relevant classification facts. Rendered as text by velodrome-analyze
// and consumed programmatically by tests.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_LINTREPORT_H
#define VELO_STATICPASS_LINTREPORT_H

#include "events/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace velo {

struct LintVar {
  VarId Var = 0;
  std::string Name;
  std::string State;                  // final Eraser lockset state
  std::vector<std::string> Guards;    // surviving candidate guard locks
  bool Inconsistent = false;          // some access ran unprotected
  bool Racy = false;                  // write-shared with empty lockset
  bool ThreadLocal = false;
  bool ReadOnly = false;
  bool HasInTxnAccess = false;
  Tid FirstThread = 0;
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  uint64_t PrefixAccesses = 0;
};

struct LintReport {
  std::vector<LintVar> Vars; // sorted by variable id
  uint64_t TotalVars = 0;
  uint64_t SharedVars = 0;       // accessed by more than one thread
  uint64_t ThreadLocalVars = 0;
  uint64_t ReadOnlyVars = 0;
  uint64_t InconsistentVars = 0; // some access unprotected
  uint64_t RacyVars = 0;         // reportable Eraser race

  /// Multi-line human-readable report, one block per variable.
  std::string render() const;
};

} // namespace velo

#endif // VELO_STATICPASS_LINTREPORT_H
