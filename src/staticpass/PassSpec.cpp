//===- staticpass/PassSpec.cpp - Static pass selection --------------------===//

#include "staticpass/PassSpec.h"

namespace velo {

const char *passName(PassId P) {
  switch (P) {
  case PassId::Escape:
    return "escape";
  case PassId::ReadOnly:
    return "readonly";
  case PassId::Redundant:
    return "redundant";
  case PassId::Lockset:
    return "lockset";
  }
  return "?";
}

const char *passSummary(PassId P) {
  switch (P) {
  case PassId::Escape:
    return "drop accesses to thread-local variables";
  case PassId::ReadOnly:
    return "drop accesses to never-written variables";
  case PassId::Redundant:
    return "collapse repeated in-transaction accesses";
  case PassId::Lockset:
    return "infer lock discipline (lint report, drops nothing)";
  }
  return "?";
}

bool parsePassSpec(const std::string &Spec, PassMask &Out,
                   std::string &ErrorOut) {
  if (Spec == "all") {
    Out = PassMask::all();
    return true;
  }
  if (Spec == "none") {
    Out = PassMask::none();
    return true;
  }
  PassMask M;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    bool Known = false;
    for (unsigned I = 0; I < NumPasses; ++I) {
      PassId P = static_cast<PassId>(I);
      if (Name == passName(P)) {
        M.set(P);
        Known = true;
        break;
      }
    }
    if (!Known) {
      ErrorOut = "unknown reduction pass '" + Name +
                 "' (expected all, none, or a comma list of escape, "
                 "readonly, redundant, lockset)";
      return false;
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  Out = M;
  return true;
}

std::string passSpecString(PassMask M) {
  if (M == PassMask::all())
    return "all";
  if (!M.any())
    return "none";
  std::string S;
  for (unsigned I = 0; I < NumPasses; ++I) {
    PassId P = static_cast<PassId>(I);
    if (!M.has(P))
      continue;
    if (!S.empty())
      S += ',';
    S += passName(P);
  }
  return S;
}

} // namespace velo
