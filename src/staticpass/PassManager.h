//===- staticpass/PassManager.h - Static pass orchestration -----*- C++ -*-===//
//
// Drives the static passes over the facts gathered by TraceClassifier.
// The classification passes (escape, readonly) assign each variable a
// VarClass in the ReductionPlan; the redundant pass is purely online (its
// run rule needs no whole-trace facts) and contributes only its mask bit;
// the lockset pass reads the offline Eraser fixpoint back out of the
// classifier's engine as a structured lint report.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_PASSMANAGER_H
#define VELO_STATICPASS_PASSMANAGER_H

#include "staticpass/Classifier.h"
#include "staticpass/LintReport.h"
#include "staticpass/ReductionPlan.h"

#include <array>

namespace velo {

struct PassInfo {
  PassId Id;
  const char *Name;
  const char *Summary;
};

class PassManager {
public:
  explicit PassManager(PassMask Enabled) : Enabled(Enabled) {}

  /// The fixed pass registry, in pipeline order.
  static std::array<PassInfo, NumPasses> registry();

  PassMask enabled() const { return Enabled; }

  /// Run the classification passes, producing the plan the online
  /// ReductionFilter enforces.
  ReductionPlan plan(const AnalysisFacts &Facts) const;

  /// Run the lockset pass: structured lock-discipline lint.
  LintReport lint(const AnalysisFacts &Facts, const SymbolTable &Syms) const;

private:
  PassMask Enabled;
};

} // namespace velo

#endif // VELO_STATICPASS_PASSMANAGER_H
