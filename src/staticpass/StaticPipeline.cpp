//===- staticpass/StaticPipeline.cpp - Whole-trace convenience API --------===//

#include "staticpass/StaticPipeline.h"

namespace velo {

AnalysisFacts classifyTrace(const Trace &T) {
  TraceClassifier C;
  for (const Event &E : T)
    C.onEvent(E);
  return C.takeFacts();
}

ReductionPlan planTrace(const Trace &T, PassMask Mask) {
  return PassManager(Mask).plan(classifyTrace(T));
}

Trace reduceTrace(const Trace &T, const ReductionPlan &Plan,
                  PassStats *StatsOut) {
  ReductionFilter Filter(Plan);
  Trace Out;
  Out.symbols() = T.symbols();
  for (const Event &E : T)
    if (Filter.keep(E))
      Out.push(E);
  if (StatsOut)
    *StatsOut = Filter.stats();
  return Out;
}

} // namespace velo
