//===- staticpass/PassManager.cpp - Static pass orchestration -------------===//

#include "staticpass/PassManager.h"

#include <algorithm>

namespace velo {

std::array<PassInfo, NumPasses> PassManager::registry() {
  std::array<PassInfo, NumPasses> R;
  for (unsigned I = 0; I < NumPasses; ++I) {
    PassId P = static_cast<PassId>(I);
    R[I] = PassInfo{P, passName(P), passSummary(P)};
  }
  return R;
}

ReductionPlan PassManager::plan(const AnalysisFacts &Facts) const {
  ReductionPlan Plan;
  Plan.Mask = Enabled;

  if (!Facts.Vars.empty()) {
    Plan.Class.assign(Facts.Vars.size(),
                      static_cast<uint8_t>(VarClass::Shared));
    Plan.InTxn.assign(Facts.Vars.size(), 1);
  }

  for (VarId X = 0; X < Facts.Vars.size(); ++X) {
    const VarFacts &F = Facts.Vars[X];
    if (!F.Seen)
      continue;
    VarClass C = VarClass::Shared;
    // ReadOnly wins over ThreadLocal for single-thread zero-write
    // variables: its drop rule is unconditional, the escape run rule is
    // not. Both require that no access ever ran unprotected, keeping the
    // dropped events exact no-ops on the Atomizer's mover classification.
    if (Enabled.has(PassId::ReadOnly) && F.Writes == 0 && !F.EverUnprotected)
      C = VarClass::ReadOnly;
    else if (Enabled.has(PassId::Escape) && !F.Multi)
      C = VarClass::ThreadLocal;
    Plan.Class[X] = static_cast<uint8_t>(C);
    Plan.InTxn[X] = F.HasInTxnAccess ? 1 : 0;
  }
  return Plan;
}

LintReport PassManager::lint(const AnalysisFacts &Facts,
                             const SymbolTable &Syms) const {
  LintReport Report;
  Report.TotalVars = Facts.SeenVars;

  for (VarId X = 0; X < Facts.Vars.size(); ++X) {
    const VarFacts &F = Facts.Vars[X];
    if (!F.Seen)
      continue;
    LintVar V;
    V.Var = X;
    V.Name = Syms.varName(X);
    V.State = Facts.Locks.stateName(X);
    for (LockId M : Facts.Locks.candidateLocks(X))
      V.Guards.push_back(Syms.lockName(M));
    std::sort(V.Guards.begin(), V.Guards.end());
    V.Inconsistent = F.EverUnprotected;
    V.Racy = Facts.Locks.isRacyVar(X);
    V.ThreadLocal = !F.Multi;
    V.ReadOnly = F.Writes == 0;
    V.HasInTxnAccess = F.HasInTxnAccess;
    V.FirstThread = F.FirstThread;
    V.Reads = F.Reads;
    V.Writes = F.Writes;
    V.PrefixAccesses = F.PrefixAccesses;

    if (F.Multi)
      ++Report.SharedVars;
    else
      ++Report.ThreadLocalVars;
    if (V.ReadOnly)
      ++Report.ReadOnlyVars;
    if (V.Inconsistent)
      ++Report.InconsistentVars;
    if (V.Racy)
      ++Report.RacyVars;
    Report.Vars.push_back(std::move(V));
  }

  std::sort(Report.Vars.begin(), Report.Vars.end(),
            [](const LintVar &A, const LintVar &B) { return A.Var < B.Var; });
  return Report;
}

} // namespace velo
