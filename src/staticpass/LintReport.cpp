//===- staticpass/LintReport.cpp - Lock-discipline lint -------------------===//

#include "staticpass/LintReport.h"

namespace velo {

std::string LintReport::render() const {
  std::string S;
  S += "lock-discipline lint: " + std::to_string(TotalVars) +
       " variable(s), " + std::to_string(SharedVars) + " shared, " +
       std::to_string(InconsistentVars) + " inconsistently guarded, " +
       std::to_string(RacyVars) + " racy\n";
  for (const LintVar &V : Vars) {
    S += "  " + V.Name + ": " + V.State;
    if (V.ThreadLocal)
      S += " (thread-local to T" + std::to_string(V.FirstThread) + ")";
    if (V.ReadOnly)
      S += " (read-only)";
    if (V.State == "shared" || V.State == "shared-modified") {
      if (V.Guards.empty()) {
        S += ", no consistent guard";
      } else {
        S += ", guarded by {";
        for (size_t I = 0; I < V.Guards.size(); ++I) {
          if (I)
            S += ", ";
          S += V.Guards[I];
        }
        S += "}";
      }
    }
    if (V.Racy)
      S += " [RACY]";
    else if (V.Inconsistent)
      S += " [inconsistent]";
    S += ", " + std::to_string(V.Reads) + " rd / " +
         std::to_string(V.Writes) + " wr";
    if (!V.ThreadLocal && V.PrefixAccesses > 0)
      S += " (" + std::to_string(V.PrefixAccesses) +
           " single-threaded before publication)";
    S += "\n";
  }
  return S;
}

} // namespace velo
