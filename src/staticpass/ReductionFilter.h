//===- staticpass/ReductionFilter.h - Sound online event filter -*- C++ -*-===//
//
// Pass B of the static pipeline: an online automaton that decides, per
// event, whether the event can be withheld from every dynamic back-end
// without changing any verdict or warning byte. The rules (soundness
// arguments in docs/STATIC.md):
//
//   Rule 0  a thread's first event is always kept. This pins fork/join
//           step publication (Velodrome active-transaction merges,
//           AeroDrome's deferred PendingParent join) to the same event in
//           reduced and unreduced runs.
//
//   Rule 1  ReadOnly variables (never written, never unprotected): every
//           access is dropped. No writer means no happens-before edges, no
//           Eraser SharedModified state, no HB write clock, and no
//           Atomizer non-mover.
//
//   Rule 2  ThreadLocal variables with no in-transaction access: every
//           access is dropped. Outside transactions a same-thread access
//           merges into the thread's current unary step, a no-op.
//
//   Rule 3  run-covered repeats (ThreadLocal-with-transactions under the
//           escape pass, Shared under the redundant pass). A *run* for
//           variable x is a maximal sequence of KEPT x-accesses by one
//           thread with no other KEPT event of that thread and no KEPT
//           foreign x-access in between. An access is droppable iff the
//           run is live (so a kept *cover* access is adjacent in the kept
//           stream), a write has a kept write in the run, and both the
//           event and the cover ran lock-protected. Dropped events never
//           extend or reset runs — they are exact no-ops on every
//           back-end, which is also what makes reduction idempotent.
//
// Protection bits come from the filter's own LockSetEngine. The engine is
// fed every lock operation and every access to a *run-rule* variable
// (kept and dropped), so its per-variable bits track the unreduced
// back-ends' engines exactly where they are consulted. Accesses to
// always-drop classes (ReadOnly, ThreadLocal-without-transactions) skip
// the engine entirely: an Eraser variable's state depends only on
// accesses to that same variable, and those classes' drop decisions never
// read it — this is the hot path that makes reduction cheaper than the
// analysis it saves.
//
// The filter serializes its full state (plan, run table, engine, stats)
// into checkpoints, so a resumed run filters identically.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_REDUCTIONFILTER_H
#define VELO_STATICPASS_REDUCTIONFILTER_H

#include "eraser/LockSetEngine.h"
#include "staticpass/ReductionPlan.h"

#include <string>
#include <vector>

namespace velo {

/// Per-pass reduction effectiveness counters.
struct PassStats {
  uint64_t Input = 0;
  uint64_t Kept = 0;
  uint64_t Dropped[NumPasses] = {0, 0, 0, 0}; // Lockset drops nothing

  uint64_t droppedTotal() const {
    uint64_t N = 0;
    for (uint64_t D : Dropped)
      N += D;
    return N;
  }

  /// "escape=12 readonly=30 redundant=7 dropped=49/100" for stats lines.
  std::string summary() const;

  void serialize(SnapshotWriter &W) const;
  bool deserialize(SnapshotReader &R);
};

/// Online keep/drop decision procedure over a ReductionPlan.
class ReductionFilter {
public:
  ReductionFilter() = default;
  explicit ReductionFilter(ReductionPlan P) : Plan(std::move(P)) {}

  /// Decide event E and update all filter state. Returns true when E must
  /// be delivered to the back-ends.
  bool keep(const Event &E);

  const ReductionPlan &plan() const { return Plan; }
  const PassStats &stats() const { return Stats; }

  void serialize(SnapshotWriter &W) const;
  bool deserialize(SnapshotReader &R);

private:
  struct ThreadState {
    uint64_t KeptSeq = 0; // number of kept events of this thread
    bool SawAny = false;
  };

  /// Live run for one variable. Valid while the owning thread has kept
  /// nothing but this run's accesses since the run began and no foreign
  /// access to the variable was kept.
  struct VarRun {
    Tid Thread = 0;
    bool Live = false;
    uint64_t KeptSeqAtStart = 0;
    uint64_t KeptAccesses = 0;
    bool HasKeptWrite = false;
    bool LastKeptUnprotected = false;
  };

  bool runLive(const VarRun &Run, const ThreadState &TS, Tid T) const {
    return Run.Live && Run.Thread == T &&
           TS.KeptSeq == Run.KeptSeqAtStart + Run.KeptAccesses;
  }

  // Dense ids index flat vectors; default-valued slots stand in for
  // absent entries and are skipped when serializing.
  ReductionPlan Plan;
  PassStats Stats;
  LockSetEngine Sim;
  std::vector<ThreadState> Threads; // indexed by Tid
  std::vector<VarRun> Runs;         // indexed by VarId
};

} // namespace velo

#endif // VELO_STATICPASS_REDUCTIONFILTER_H
