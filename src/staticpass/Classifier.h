//===- staticpass/Classifier.h - Whole-trace fact gathering -----*- C++ -*-===//
//
// Pass A of the two-pass static pipeline: a single linear sweep over the
// trace that gathers, per variable, the whole-trace facts every reduction
// pass classifies on — accessor threads, read/write counts, whether any
// access happens inside a transaction, and whether any access ever runs
// with an empty candidate lockset (the offline Eraser fixpoint, reusing
// LockSetEngine so the protection bits match the dynamic back-ends
// exactly). The classifier keeps no per-event state, so it streams in
// constant memory per variable and composes with TraceStream.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_CLASSIFIER_H
#define VELO_STATICPASS_CLASSIFIER_H

#include "eraser/LockSetEngine.h"
#include "events/Event.h"

#include <vector>

namespace velo {

/// Whole-trace facts about one variable.
struct VarFacts {
  Tid FirstThread = 0;
  bool Seen = false;           // variable was accessed at all
  bool Multi = false;          // accessed by more than one thread
  bool HasInTxnAccess = false; // some access occurs inside a transaction
  bool EverUnprotected = false; // some access ran with empty candidate set
  uint64_t Reads = 0;
  uint64_t Writes = 0;
  /// Accesses before the first second-thread access (the whole count when
  /// !Multi). A large prefix on a Multi var marks late publication — lint
  /// surfaces it, but the filter never drops on it (see docs/STATIC.md).
  uint64_t PrefixAccesses = 0;
};

/// Everything the passes need, produced by one sweep.
struct AnalysisFacts {
  /// Indexed by VarId (dense interner ids); slots with !Seen are
  /// variables the trace never accessed.
  std::vector<VarFacts> Vars;
  uint64_t SeenVars = 0;
  uint64_t Events = 0;
  uint64_t Accesses = 0;
  /// Final state of the offline lockset fixpoint; the lint pass reads the
  /// surviving candidate guard sets out of it.
  LockSetEngine Locks;
};

/// Streaming fact gatherer.
class TraceClassifier {
public:
  void onEvent(const Event &E);

  const AnalysisFacts &facts() const { return Facts; }
  AnalysisFacts takeFacts() { return std::move(Facts); }

private:
  AnalysisFacts Facts;
  std::vector<uint32_t> TxnDepth; // indexed by Tid
};

} // namespace velo

#endif // VELO_STATICPASS_CLASSIFIER_H
