//===- staticpass/StaticPipeline.h - Whole-trace convenience API -*- C++ -*-===//
//
// One-call wrappers over the two-pass pipeline for callers that hold the
// whole trace in memory (tests, fuzzing, velodrome-run's deferred mode,
// the bench harness). The streaming tools drive TraceClassifier and
// ReductionFilter directly instead.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_STATICPASS_STATICPIPELINE_H
#define VELO_STATICPASS_STATICPIPELINE_H

#include "events/Trace.h"
#include "staticpass/PassManager.h"
#include "staticpass/ReductionFilter.h"

namespace velo {

/// Pass A: gather whole-trace facts.
AnalysisFacts classifyTrace(const Trace &T);

/// Pass A + classification passes: the drop plan for Mask.
ReductionPlan planTrace(const Trace &T, PassMask Mask);

/// Pass B: the reduced trace — kept events in order, symbol table copied
/// verbatim so ids and names are unchanged. StatsOut, when non-null,
/// receives the per-pass drop counters.
Trace reduceTrace(const Trace &T, const ReductionPlan &Plan,
                  PassStats *StatsOut = nullptr);

} // namespace velo

#endif // VELO_STATICPASS_STATICPIPELINE_H
