//===- preload/TraceConfig.cpp - VELO_TRACE_* environment parsing ---------===//

#include "preload/TraceConfig.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace velo {
namespace preload {

namespace {

bool parseU64(const char *S, uint64_t &Out) {
  if (*S == '\0' || *S == '-' || *S == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (errno != 0 || End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

bool fail(char *Diag, size_t DiagLen, const char *Var, const char *Value,
          const char *Want) {
  std::snprintf(Diag, DiagLen, "bad %s '%s' (want %s)", Var, Value, Want);
  return false;
}

} // namespace

bool parseTraceConfig(TraceConfig &C, char *Diag, size_t DiagLen) {
  if (DiagLen)
    Diag[0] = '\0';

  const char *Out = std::getenv("VELO_TRACE_OUT");
  if (Out) {
    if (Out[0] == '\0' || std::strlen(Out) >= sizeof(C.OutPath))
      return fail(Diag, DiagLen, "VELO_TRACE_OUT", Out,
                  "a nonempty path under 3072 bytes");
    std::snprintf(C.OutPath, sizeof(C.OutPath), "%s", Out);
  } else {
    std::snprintf(C.OutPath, sizeof(C.OutPath), "velodrome-%ld.vtrc",
                  static_cast<long>(::getpid()));
  }

  if (const char *S = std::getenv("VELO_TRACE_SAMPLE")) {
    uint64_t N = 0;
    if (!parseU64(S, N) || N == 0)
      return fail(Diag, DiagLen, "VELO_TRACE_SAMPLE", S,
                  "a positive integer");
    C.SampleEvery = N;
  }

  if (const char *S = std::getenv("VELO_TRACE_BUFFER_EVENTS")) {
    uint64_t N = 0;
    if (!parseU64(S, N) || N < 64 || N > (1ull << 20))
      return fail(Diag, DiagLen, "VELO_TRACE_BUFFER_EVENTS", S,
                  "an integer in [64, 1048576]");
    C.BufferEvents = static_cast<uint32_t>(N);
  }

  if (const char *S = std::getenv("VELO_TRACE_FLUSH")) {
    if (std::strcmp(S, "sync") == 0)
      C.SyncFlush = true;
    else if (std::strcmp(S, "buffer") == 0)
      C.SyncFlush = false;
    else
      return fail(Diag, DiagLen, "VELO_TRACE_FLUSH", S, "sync or buffer");
  }

  if (const char *S = std::getenv("VELO_TRACE_FORK")) {
    if (std::strcmp(S, "reopen") == 0)
      C.ReopenOnFork = true;
    else if (std::strcmp(S, "off") == 0)
      C.ReopenOnFork = false;
    else
      return fail(Diag, DiagLen, "VELO_TRACE_FORK", S, "reopen or off");
  }

  return true;
}

} // namespace preload
} // namespace velo
