/*===- preload/velo_trace.h - Annotation API for traced programs ---------===*
 *
 * Shared-access annotations for programs run under libvelodrome-trace.so
 * (docs/TRACING.md). Every symbol is declared weak: an annotated program
 * links and runs unchanged without the tracer — the references resolve to
 * null — so call sites must be guarded:
 *
 *   #include "velo_trace.h"
 *   ...
 *   if (velo_trace_write) velo_trace_write(&balance);
 *
 * When the tracer is LD_PRELOADed its strong definitions win and the
 * calls record events. This header is plain C so it drops into any
 * pthread program; it has no dependency on the rest of the repo.
 *
 *===---------------------------------------------------------------------===*/

#ifndef VELO_PRELOAD_VELO_TRACE_H
#define VELO_PRELOAD_VELO_TRACE_H

#ifdef __cplusplus
extern "C" {
#endif

/* Record a read/write of the shared variable at Addr. The address is the
 * variable's identity; distinct addresses are distinct variables. */
__attribute__((weak)) void velo_trace_read(const void *Addr);
__attribute__((weak)) void velo_trace_write(const void *Addr);

/* Enter/exit an atomic block. Label names the block in violation reports
 * (a method name, in RoadRunner terms); NULL means an unlabeled block.
 * Blocks nest; velo_trace_end closes the innermost open block. */
__attribute__((weak)) void velo_trace_begin(const char *Label);
__attribute__((weak)) void velo_trace_end(void);

#ifdef __cplusplus
}
#endif

#endif /* VELO_PRELOAD_VELO_TRACE_H */
