//===- preload/TraceRuntime.cpp - Preload tracer core ---------------------===//
//
// Implementation notes, because almost every line here is shaped by one of
// three constraints:
//
//  * Async-signal safety. The fatal-signal flush path may run inside a
//    SIGSEGV handler, so the whole writer core is malloc-free: events
//    encode into a scratch buffer preallocated at init, symbol registries
//    are append-only arrays read lock-free under an atomic count, and the
//    writer lock is a spinlock the handler only try-acquires.
//  * Reentrancy. The runtime's own bookkeeping (malloc for thread states,
//    stdio for diagnostics) can call interposed pthread functions; a
//    thread-local in-runtime flag makes those inner calls pass straight
//    through to libc instead of recursing into the trace.
//  * Owner-only flushing. A thread's buffer is flushed only by that
//    thread (buffer full, sync points, thread exit, its own fatal
//    signal) or by the atexit hook for the exiting thread — so a flush
//    never races the owner appending, and a frame's events always
//    reference symbol ids the registries had already published.
//
// File-order guarantee under the default sync flush policy: a release is
// flushed *before* the real unlock and an acquire is recorded *after* the
// real lock, so for any lock the file orders each critical section's
// events entirely before the next holder's. Unsynchronized accesses have
// approximate order; the trace sanitizer's lenient mode absorbs the
// resulting damage (that is its job).
//
//===----------------------------------------------------------------------===//

#include "preload/TraceRuntime.h"

#include "preload/TraceConfig.h"

#include "events/BinaryFormat.h"
#include "events/Event.h"
#include "support/Syscalls.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <pthread.h>
#include <sched.h>
#include <signal.h>
#include <unistd.h>

namespace velo {
namespace preload {
namespace {

//===----------------------------------------------------------------------===//
// Constants and plain-data types (everything constant-initialized: the
// interposers can run before any constructor in this library does)
//===----------------------------------------------------------------------===//

constexpr uint32_t MaxVars = 1u << 16;   ///< distinct annotated addresses
constexpr uint32_t MaxLocks = 1u << 14;  ///< distinct mutexes
constexpr uint32_t MaxLabels = 1u << 10; ///< distinct atomic-block labels
constexpr uint32_t MaxTids = 1u << 20;   ///< mirrors events' MaxTraceThreads
constexpr uint32_t MaxMappedThreads = 1u << 15; ///< live pthread_t -> tid map
constexpr uint32_t MaxHeldLocks = 64;    ///< nesting depth tracked per thread
constexpr uint32_t AddrNameCap = 24;     ///< "m@0x" + 16 hex digits + NUL
constexpr uint32_t LabelNameCap = 64;    ///< longer labels are truncated

struct Rec {
  uint8_t Op;
  uint32_t Tid;
  uint32_t Target;
};

struct HeldLock {
  uint32_t Lock;
  uint32_t Depth;
};

struct ThreadState {
  uint32_t Tid;
  uint32_t Count; ///< events buffered in Buf
  Rec *Buf;       ///< capacity = Config.BufferEvents
  HeldLock Held[MaxHeldLocks];
  uint32_t HeldCount;
  uint64_t SampleTick;
  ThreadState *Next; ///< AllThreads list (drop accounting at exit)
};

/// Test-and-test-and-set spinlock. The writer and registry critical
/// sections are short (one write() / one snprintf); a real mutex would
/// drag pthread symbols into paths that must stay self-contained, and the
/// fatal-signal handler needs a try-acquire that cannot deadlock.
struct SpinLock {
  std::atomic<uint32_t> V{0};
  void lock() {
    while (V.exchange(1, std::memory_order_acquire)) {
      while (V.load(std::memory_order_relaxed))
        ::sched_yield();
    }
  }
  bool tryLock() { return !V.exchange(1, std::memory_order_acquire); }
  void unlock() { V.store(0, std::memory_order_release); }
};

/// Append-only address registry: open-addressing table over preallocated
/// arrays. Lookups are lock-free (acquire loads pair with the release
/// stores publication makes); inserts take the registry spinlock. Names
/// are generated from the address ("v@0x1234"), stored by id, and read by
/// the flush path under the published Count — never freed, never moved.
struct AddrPool {
  std::atomic<uint64_t> *Keys; ///< table; 0 = empty slot
  uint32_t *Ids;               ///< table slot -> id
  char (*Names)[AddrNameCap];  ///< by id
  uint8_t *Lens;               ///< by id
  std::atomic<uint32_t> Count;
  uint32_t Max;
  uint32_t TableCap; ///< power of two, 2x Max
  char Prefix;       ///< 'v' or 'm'
};

/// Label registry: same table, keyed by a content hash with stored-name
/// comparison on collision.
struct LabelPool {
  std::atomic<uint64_t> *Keys;
  uint32_t *Ids;
  char (*Names)[LabelNameCap];
  uint8_t *Lens;
  std::atomic<uint32_t> Count;
  uint32_t Max;
  uint32_t TableCap;
};

struct IndexEntry {
  uint64_t Offset;
  uint64_t FirstOrdinal;
  uint64_t Count;
};

struct Global {
  TraceConfig Cfg;

  bool Disabled;          ///< bad env / failed open: permanently off
  std::atomic<bool> Dead; ///< writer closed (trailer written, crash
                          ///< flush done, write error, fork-off child)
  bool ReopenPending;     ///< forked child: open ChildPath on first flush
  bool WriteFailed;       ///< defer the I/O diagnostic out of signal ctx
  char ChildPath[3104];

  int Fd;
  uint64_t BytesWritten; ///< file offset of the next frame
  uint64_t TotalEvents;

  IndexEntry *Index;
  size_t IndexCount, IndexCap;
  bool IndexBroken; ///< realloc failed: no trailer, salvage recovers

  char *Scratch; ///< frame encode buffer (worst case, sized at init)
  size_t ScratchCap;

  AddrPool Vars, Locks;
  LabelPool Labels;
  uint32_t VarsEmitted, LocksEmitted, LabelsEmitted;

  /// pthread_t -> tid for join attribution (slots tombstoned on join).
  std::atomic<uint64_t> *ThreadKeys;
  uint32_t *ThreadTids;

  std::atomic<uint32_t> NextTid;
  std::atomic<uint64_t> Drops;
  ThreadState *AllThreads;

  SpinLock StateSpin;  ///< registries, thread list, thread map
  SpinLock WriterSpin; ///< file writes, index, Emitted counters, Scratch

  pthread_key_t Key; ///< TSD destructor = thread-exit flush
  struct sigaction OldSig[5];
};

// constinit matters: Interpose.c's constructor (and with it doInit) runs
// from the same .init_array as this translation unit's dynamic
// initializers, and link order puts it first. A dynamically initialized G
// would still be all-zeros during doInit — BufferEvents = 0 hands the
// initial thread a zero-capacity event buffer whose records then overrun
// the heap — and the late-running initializer would clobber whatever
// doInit stored. Constant initialization makes G fully formed the moment
// the library is mapped, before any constructor can observe it.
constinit Global G{};
constinit std::atomic<int> InitState; // 0 = not started, 1 = running, 2 = done

constexpr int FatalSigs[5] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};

// initial-exec TLS: resolved to static TLS at load time, so access is
// async-signal-safe (no lazy __tls_get_addr allocation). Preloaded
// libraries get static TLS surplus from the dynamic linker.
__thread ThreadState *TlsState
    __attribute__((tls_model("initial-exec"))) = nullptr;
__thread bool TlsInRuntime __attribute__((tls_model("initial-exec"))) = false;

//===----------------------------------------------------------------------===//
// Malloc-free frame encoding
//===----------------------------------------------------------------------===//

struct Cursor {
  char *P;
  char *End;
  bool Ok = true;

  void byte(uint8_t B) {
    if (P == End) {
      Ok = false;
      return;
    }
    *P++ = static_cast<char>(B);
  }

  void varint(uint64_t V) {
    while (V >= 0x80) {
      byte(static_cast<uint8_t>((V & 0x7f) | 0x80));
      V >>= 7;
    }
    byte(static_cast<uint8_t>(V));
  }

  void bytes(const char *Data, size_t N) {
    if (static_cast<size_t>(End - P) < N) {
      Ok = false;
      return;
    }
    std::memcpy(P, Data, N);
    P += N;
  }
};

uint64_t hashKey(uint64_t K) {
  // splitmix64 finisher: addresses share low-bit patterns.
  K ^= K >> 30;
  K *= 0xbf58476d1ce4e5b9ull;
  K ^= K >> 27;
  K *= 0x94d049bb133111ebull;
  K ^= K >> 31;
  return K;
}

//===----------------------------------------------------------------------===//
// Registries
//===----------------------------------------------------------------------===//

/// Look up or insert Key. Returns the id, or UINT32_MAX when the pool is
/// full (the caller drops the event under the counter).
uint32_t poolIntern(AddrPool &P, uint64_t Key) {
  if (Key == 0)
    return UINT32_MAX; // 0 marks empty slots; a null address is untraceable
  uint64_t H = hashKey(Key);
  uint32_t Mask = P.TableCap - 1;
  for (uint32_t I = 0; I < P.TableCap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = P.Keys[Slot].load(std::memory_order_acquire);
    if (K == Key)
      return P.Ids[Slot];
    if (K == 0)
      break;
  }
  G.StateSpin.lock();
  uint32_t Result = UINT32_MAX;
  for (uint32_t I = 0; I < P.TableCap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = P.Keys[Slot].load(std::memory_order_relaxed);
    if (K == Key) {
      Result = P.Ids[Slot];
      break;
    }
    if (K == 0) {
      uint32_t Id = P.Count.load(std::memory_order_relaxed);
      if (Id >= P.Max)
        break; // pool exhausted
      int N = std::snprintf(P.Names[Id], AddrNameCap, "%c@0x%llx", P.Prefix,
                            static_cast<unsigned long long>(Key));
      P.Lens[Id] = static_cast<uint8_t>(N);
      P.Ids[Slot] = Id;
      // Publication order matters: name and slot id before the key, the
      // key before the count — a lock-free reader that sees either sees
      // everything it implies.
      P.Keys[Slot].store(Key, std::memory_order_release);
      P.Count.store(Id + 1, std::memory_order_release);
      Result = Id;
      break;
    }
  }
  G.StateSpin.unlock();
  return Result;
}

/// Lookup without insertion (release path: a lock we never recorded the
/// acquire of must not invent an id).
uint32_t poolLookup(const AddrPool &P, uint64_t Key) {
  if (Key == 0)
    return UINT32_MAX;
  uint64_t H = hashKey(Key);
  uint32_t Mask = P.TableCap - 1;
  for (uint32_t I = 0; I < P.TableCap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = P.Keys[Slot].load(std::memory_order_acquire);
    if (K == Key)
      return P.Ids[Slot];
    if (K == 0)
      return UINT32_MAX;
  }
  return UINT32_MAX;
}

uint32_t labelIntern(LabelPool &P, const char *Name) {
  size_t Len = std::strlen(Name);
  if (Len >= LabelNameCap)
    Len = LabelNameCap - 1; // truncate; identity is the truncated text
  uint64_t Key = binfmt::fnv1a64(std::string_view(Name, Len));
  if (Key == 0)
    Key = 1;
  uint64_t H = hashKey(Key);
  uint32_t Mask = P.TableCap - 1;

  auto SlotMatches = [&](uint32_t Slot) {
    uint32_t Id = P.Ids[Slot];
    return P.Lens[Id] == Len && std::memcmp(P.Names[Id], Name, Len) == 0;
  };

  for (uint32_t I = 0; I < P.TableCap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = P.Keys[Slot].load(std::memory_order_acquire);
    if (K == 0)
      break;
    if (K == Key && SlotMatches(Slot))
      return P.Ids[Slot];
  }
  G.StateSpin.lock();
  uint32_t Result = UINT32_MAX;
  for (uint32_t I = 0; I < P.TableCap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = P.Keys[Slot].load(std::memory_order_relaxed);
    if (K == Key && SlotMatches(Slot)) {
      Result = P.Ids[Slot];
      break;
    }
    if (K == 0) {
      uint32_t Id = P.Count.load(std::memory_order_relaxed);
      if (Id >= P.Max)
        break;
      std::memcpy(P.Names[Id], Name, Len);
      P.Names[Id][Len] = '\0';
      P.Lens[Id] = static_cast<uint8_t>(Len);
      P.Ids[Slot] = Id;
      P.Keys[Slot].store(Key, std::memory_order_release);
      P.Count.store(Id + 1, std::memory_order_release);
      Result = Id;
      break;
    }
  }
  G.StateSpin.unlock();
  return Result;
}

/// pthread_t -> tid map (StateSpin held for writes; lookups lock-free).
void threadMapInsert(uint64_t PthreadId, uint32_t Tid) {
  if (PthreadId == 0)
    return;
  uint64_t H = hashKey(PthreadId);
  uint32_t Cap = MaxMappedThreads * 2, Mask = Cap - 1;
  G.StateSpin.lock();
  for (uint32_t I = 0; I < Cap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = G.ThreadKeys[Slot].load(std::memory_order_relaxed);
    if (K == PthreadId) { // pthread_t reuse after a join: overwrite
      G.ThreadTids[Slot] = Tid;
      break;
    }
    if (K == 0) {
      G.ThreadTids[Slot] = Tid;
      G.ThreadKeys[Slot].store(PthreadId, std::memory_order_release);
      break;
    }
  }
  // A full map silently stops attributing joins; the trace stays valid
  // (a never-joined thread is legal) and the sanitizer needs no repair.
  G.StateSpin.unlock();
}

uint32_t threadMapTake(uint64_t PthreadId) {
  if (PthreadId == 0)
    return UINT32_MAX;
  uint64_t H = hashKey(PthreadId);
  uint32_t Cap = MaxMappedThreads * 2, Mask = Cap - 1;
  uint32_t Result = UINT32_MAX;
  G.StateSpin.lock();
  for (uint32_t I = 0; I < Cap; ++I) {
    uint32_t Slot = static_cast<uint32_t>(H + I) & Mask;
    uint64_t K = G.ThreadKeys[Slot].load(std::memory_order_relaxed);
    if (K == PthreadId) {
      Result = G.ThreadTids[Slot];
      G.ThreadTids[Slot] = UINT32_MAX; // tombstone: joins fire once
      break;
    }
    if (K == 0)
      break;
  }
  G.StateSpin.unlock();
  return Result;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

/// Open Path, write the 16-byte container header. Returns false with the
/// writer marked dead on failure.
bool openOutput(const char *Path) {
  int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (Fd < 0)
    return false;
  char Header[binfmt::HeaderSize];
  std::memcpy(Header, binfmt::Magic, 8);
  for (int I = 0; I < 4; ++I)
    Header[8 + I] = static_cast<char>((binfmt::Version >> (8 * I)) & 0xff);
  std::memset(Header + 12, 0, 4);
  if (!sys::writeAll(Fd, Header, sizeof(Header))) {
    sys::closeQuiet(Fd);
    return false;
  }
  G.Fd = Fd;
  G.BytesWritten = binfmt::HeaderSize;
  return true;
}

void indexPush(uint64_t Offset, uint64_t FirstOrdinal, uint64_t Count) {
  if (G.IndexBroken)
    return;
  if (G.IndexCount == G.IndexCap) {
    size_t NewCap = G.IndexCap ? G.IndexCap * 2 : 1024;
    void *P = std::realloc(G.Index, NewCap * sizeof(IndexEntry));
    if (!P) {
      G.IndexBroken = true; // keep writing frames; salvage recovers them
      return;
    }
    G.Index = static_cast<IndexEntry *>(P);
    G.IndexCap = NewCap;
  }
  G.Index[G.IndexCount++] = {Offset, FirstOrdinal, Count};
}

void emitSymBlock(Cursor &C, const char (*Names)[AddrNameCap],
                  const uint8_t *Lens, uint32_t From, uint32_t To) {
  C.varint(From);
  C.varint(To - From);
  for (uint32_t I = From; I < To; ++I) {
    C.varint(Lens[I]);
    C.bytes(Names[I], Lens[I]);
  }
}

void emitLabelBlock(Cursor &C, const char (*Names)[LabelNameCap],
                    const uint8_t *Lens, uint32_t From, uint32_t To) {
  C.varint(From);
  C.varint(To - From);
  for (uint32_t I = From; I < To; ++I) {
    C.varint(Lens[I]);
    C.bytes(Names[I], Lens[I]);
  }
}

/// Encode and write T's buffer as one events frame. WriterSpin held; the
/// caller is T's owner, so no one is appending. SignalCtx suppresses the
/// index append (no realloc) — the handler sets Dead right after, so the
/// missing entry never meets a trailer.
void flushLocked(ThreadState *T, bool SignalCtx) {
  uint32_t N = T->Count;
  if (N == 0)
    return;
  T->Count = 0; // consumed either way; drops are counted below
  if (G.Dead.load(std::memory_order_relaxed) || G.Disabled) {
    G.Drops.fetch_add(N, std::memory_order_relaxed);
    return;
  }
  if (G.Fd < 0) {
    // Forked child with lazy reopen: create "<out>.<pid>" on the first
    // event that actually needs it (fork+exec children leave no file).
    if (!G.ReopenPending || SignalCtx || !openOutput(G.ChildPath)) {
      G.Dead.store(true, std::memory_order_relaxed);
      G.WriteFailed = !SignalCtx && G.ReopenPending;
      G.Drops.fetch_add(N, std::memory_order_relaxed);
      return;
    }
    G.ReopenPending = false;
  }

  uint32_t VC = G.Vars.Count.load(std::memory_order_acquire);
  uint32_t LC = G.Locks.Count.load(std::memory_order_acquire);
  uint32_t BC = G.Labels.Count.load(std::memory_order_acquire);

  Cursor C{G.Scratch + binfmt::FrameHeaderSize, G.Scratch + G.ScratchCap};
  emitSymBlock(C, G.Vars.Names, G.Vars.Lens, G.VarsEmitted, VC);
  emitSymBlock(C, G.Locks.Names, G.Locks.Lens, G.LocksEmitted, LC);
  emitLabelBlock(C, G.Labels.Names, G.Labels.Lens, G.LabelsEmitted, BC);
  C.varint(N);
  for (uint32_t I = 0; I < N; ++I) {
    const Rec &R = T->Buf[I];
    C.byte(R.Op);
    C.varint(R.Tid);
    if (R.Op != static_cast<uint8_t>(Op::End))
      C.varint(R.Target);
  }
  if (!C.Ok) { // scratch is sized for the worst case; belt and braces
    G.Drops.fetch_add(N, std::memory_order_relaxed);
    return;
  }

  size_t Len = static_cast<size_t>(C.P - (G.Scratch + binfmt::FrameHeaderSize));
  G.Scratch[0] = static_cast<char>(binfmt::EventsFrame);
  for (int I = 0; I < 4; ++I)
    G.Scratch[1 + I] = static_cast<char>((Len >> (8 * I)) & 0xff);
  uint64_t Sum = binfmt::fnv1a64(
      std::string_view(G.Scratch + binfmt::FrameHeaderSize, Len));
  for (int I = 0; I < 8; ++I)
    G.Scratch[5 + I] = static_cast<char>((Sum >> (8 * I)) & 0xff);

  if (!sys::writeAll(G.Fd, G.Scratch, binfmt::FrameHeaderSize + Len)) {
    G.Dead.store(true, std::memory_order_relaxed);
    G.WriteFailed = true;
    G.Drops.fetch_add(N, std::memory_order_relaxed);
    return;
  }
  if (!SignalCtx)
    indexPush(G.BytesWritten, G.TotalEvents, N);
  G.BytesWritten += binfmt::FrameHeaderSize + Len;
  G.TotalEvents += N;
  G.VarsEmitted = VC;
  G.LocksEmitted = LC;
  G.LabelsEmitted = BC;
}

void flushNow(ThreadState *T) {
  if (T->Count == 0)
    return;
  G.WriterSpin.lock();
  flushLocked(T, /*SignalCtx=*/false);
  G.WriterSpin.unlock();
}

/// Index frame + trailer, closing the container. WriterSpin held. The
/// index payload can exceed the event scratch for frame-heavy runs, so it
/// streams: pass 1 sizes and checksums, pass 2 re-encodes and writes.
void writeIndexAndTrailer() {
  if (G.Fd < 0 || G.Dead.load(std::memory_order_relaxed) || G.IndexBroken)
    return;

  auto Encode = [&](bool Write, uint64_t &LenOut, uint64_t &SumOut) -> bool {
    uint64_t Sum = 14695981039346656037ull;
    uint64_t Len = 0;
    char Buf[64];
    auto Emit = [&](Cursor &C) -> bool {
      size_t N = static_cast<size_t>(C.P - Buf);
      for (size_t I = 0; I < N; ++I) {
        Sum ^= static_cast<unsigned char>(Buf[I]);
        Sum *= 1099511628211ull;
      }
      Len += N;
      return !Write || sys::writeAll(G.Fd, Buf, N);
    };
    {
      Cursor C{Buf, Buf + sizeof(Buf)};
      C.varint(G.IndexCount); // leading frame count
      if (!Emit(C))
        return false;
    }
    for (size_t I = 0; I < G.IndexCount; ++I) {
      Cursor C{Buf, Buf + sizeof(Buf)};
      C.varint(G.Index[I].Offset);
      C.varint(G.Index[I].FirstOrdinal);
      C.varint(G.Index[I].Count);
      if (!Emit(C))
        return false;
    }
    Cursor C{Buf, Buf + sizeof(Buf)};
    C.varint(G.TotalEvents);
    if (!Emit(C))
      return false;
    LenOut = Len;
    SumOut = Sum;
    return true;
  };

  uint64_t Len = 0, Sum = 0;
  if (!Encode(false, Len, Sum) || Len > binfmt::MaxFramePayload)
    return; // leave a salvageable prefix rather than a bogus index

  uint64_t IdxOff = G.BytesWritten;
  char Hdr[binfmt::FrameHeaderSize];
  Hdr[0] = static_cast<char>(binfmt::IndexFrame);
  for (int I = 0; I < 4; ++I)
    Hdr[1 + I] = static_cast<char>((Len >> (8 * I)) & 0xff);
  for (int I = 0; I < 8; ++I)
    Hdr[5 + I] = static_cast<char>((Sum >> (8 * I)) & 0xff);
  if (!sys::writeAll(G.Fd, Hdr, sizeof(Hdr))) {
    G.WriteFailed = true;
    return;
  }
  uint64_t Len2 = 0, Sum2 = 0;
  if (!Encode(true, Len2, Sum2)) {
    G.WriteFailed = true;
    return;
  }
  char Trailer[binfmt::TrailerSize];
  for (int I = 0; I < 8; ++I)
    Trailer[I] = static_cast<char>((IdxOff >> (8 * I)) & 0xff);
  std::memcpy(Trailer + 8, binfmt::TrailerMagic, 8);
  if (!sys::writeAll(G.Fd, Trailer, sizeof(Trailer)))
    G.WriteFailed = true;
}

//===----------------------------------------------------------------------===//
// Thread state
//===----------------------------------------------------------------------===//

extern "C" void veloKeyDtor(void *P); // forward (TSD destructor)

ThreadState *allocThreadState(uint32_t Tid) {
  ThreadState *T =
      static_cast<ThreadState *>(std::calloc(1, sizeof(ThreadState)));
  Rec *Buf = static_cast<Rec *>(std::calloc(G.Cfg.BufferEvents, sizeof(Rec)));
  if (!T || !Buf) {
    std::free(T);
    std::free(Buf);
    return nullptr;
  }
  T->Tid = Tid;
  T->Buf = Buf;
  G.StateSpin.lock();
  T->Next = G.AllThreads;
  G.AllThreads = T;
  G.StateSpin.unlock();
  TlsState = T;
  // The TSD destructor flushes the buffer on pthread_exit and implicit
  // thread termination. The state itself is deliberately never freed: a
  // later-running destructor of another key may still take a traced lock
  // and record into it (one bounded buffer leaks per exited thread).
  ::pthread_setspecific(G.Key, T);
  return T;
}

ThreadState *ensureSelf() {
  ThreadState *T = TlsState;
  if (T)
    return T;
  // A thread we did not see created (made before the library loaded, or
  // by a runtime bypassing the pthread_create PLT). Give it a fresh tid
  // with no fork event — a trace thread never forked is legal.
  uint32_t Tid = G.NextTid.fetch_add(1, std::memory_order_relaxed);
  if (Tid >= MaxTids)
    return nullptr;
  return allocThreadState(Tid);
}

void record(ThreadState *T, uint8_t OpByte, uint32_t Target) {
  if (T->Count >= G.Cfg.BufferEvents)
    flushNow(T); // leaves Count == 0 (dead writers drop under the counter)
  T->Buf[T->Count++] = {OpByte, T->Tid, Target};
}

void syncFlush(ThreadState *T) {
  if (G.Cfg.SyncFlush)
    flushNow(T);
}

/// RAII in-runtime guard. Armed == false means recording must not happen:
/// already inside the runtime, not initialized, or disabled.
struct Guard {
  bool Armed;
  Guard()
      : Armed(!TlsInRuntime && !G.Disabled &&
              InitState.load(std::memory_order_acquire) == 2) {
    if (Armed)
      TlsInRuntime = true;
  }
  ~Guard() {
    if (Armed)
      TlsInRuntime = false;
  }
};

//===----------------------------------------------------------------------===//
// Process-lifetime hooks
//===----------------------------------------------------------------------===//

extern "C" void veloKeyDtor(void *P) {
  ThreadState *T = static_cast<ThreadState *>(P);
  if (!T)
    return;
  bool Saved = TlsInRuntime;
  TlsInRuntime = true;
  flushNow(T);
  TlsInRuntime = Saved;
}

void onExit() {
  bool Saved = TlsInRuntime;
  TlsInRuntime = true;
  G.WriterSpin.lock();
  ThreadState *Self = TlsState;
  if (Self)
    flushLocked(Self, /*SignalCtx=*/false);
  writeIndexAndTrailer();
  // Seal the writer: any thread still running flushes into the drop
  // counter instead of appending frames past the trailer.
  G.Dead.store(true, std::memory_order_relaxed);
  if (G.Fd >= 0) {
    sys::closeQuiet(G.Fd);
    G.Fd = -1;
  }
  // Live threads' unflushed tails are lost by design (flushing another
  // thread's buffer would race its owner); count them as drops.
  uint64_t Unflushed = 0;
  for (ThreadState *T = G.AllThreads; T; T = T->Next)
    if (T != Self)
      Unflushed += T->Count;
  G.WriterSpin.unlock();

  uint64_t Dropped = G.Drops.load(std::memory_order_relaxed) + Unflushed;
  if (G.WriteFailed)
    std::fprintf(stderr,
                 "velodrome-trace: write failure, container truncated "
                 "(recover with velodrome-check --salvage)\n");
  if (Dropped)
    std::fprintf(stderr,
                 "velodrome-trace: %llu event(s) dropped or unflushed\n",
                 static_cast<unsigned long long>(Dropped));
  TlsInRuntime = Saved;
}

void fatalHandler(int Sig) {
  // Flush the crashing thread's buffer if the writer is free, then seal
  // the container (no index/trailer — salvage recovers the prefix) and
  // hand the signal to whoever owned it before us.
  if (G.WriterSpin.tryLock()) {
    ThreadState *T = TlsState;
    if (T && !TlsInRuntime)
      flushLocked(T, /*SignalCtx=*/true);
    G.Dead.store(true, std::memory_order_relaxed);
    G.WriterSpin.unlock();
  } else {
    G.Dead.store(true, std::memory_order_relaxed);
  }
  for (int I = 0; I < 5; ++I)
    if (FatalSigs[I] == Sig)
      ::sigaction(Sig, &G.OldSig[I], nullptr);
  ::raise(Sig);
}

void atforkPrepare() {
  G.StateSpin.lock();
  G.WriterSpin.lock();
}

void atforkParent() {
  G.WriterSpin.unlock();
  G.StateSpin.unlock();
}

void atforkChild() {
  G.WriterSpin.unlock();
  G.StateSpin.unlock();
  if (G.Disabled)
    return;
  // The fd is shared with the parent: close it before anything can write.
  if (G.Fd >= 0) {
    sys::closeQuiet(G.Fd);
    G.Fd = -1;
  }
  // Inherited buffers belong to the parent's file; drop them. Only the
  // forking thread exists in the child.
  ThreadState *Self = TlsState;
  if (Self)
    Self->Count = 0;
  G.AllThreads = Self;
  if (Self)
    Self->Next = nullptr;
  G.IndexCount = 0;
  G.IndexBroken = false;
  G.BytesWritten = binfmt::HeaderSize;
  G.TotalEvents = 0;
  G.VarsEmitted = G.LocksEmitted = G.LabelsEmitted = 0;
  G.Drops.store(0, std::memory_order_relaxed);
  G.WriteFailed = false;
  if (G.Cfg.ReopenOnFork && !G.Dead.load(std::memory_order_relaxed)) {
    std::snprintf(G.ChildPath, sizeof(G.ChildPath), "%s.%ld", G.Cfg.OutPath,
                  static_cast<long>(::getpid()));
    G.ReopenPending = true; // opened on first flush; fork+exec leaves none
  } else {
    G.Dead.store(true, std::memory_order_relaxed);
  }
}

void doInit() {
  TlsInRuntime = true;
  char Diag[256];
  if (!parseTraceConfig(G.Cfg, Diag, sizeof(Diag))) {
    std::fprintf(stderr, "velodrome-trace: %s; tracing disabled\n", Diag);
    G.Disabled = true;
    TlsInRuntime = false;
    return;
  }

  auto AllocAddrPool = [](AddrPool &P, uint32_t Max, char Prefix) {
    P.Max = Max;
    P.TableCap = Max * 2;
    P.Prefix = Prefix;
    P.Keys = static_cast<std::atomic<uint64_t> *>(
        std::calloc(P.TableCap, sizeof(std::atomic<uint64_t>)));
    P.Ids = static_cast<uint32_t *>(std::calloc(P.TableCap, sizeof(uint32_t)));
    P.Names = static_cast<char(*)[AddrNameCap]>(std::calloc(Max, AddrNameCap));
    P.Lens = static_cast<uint8_t *>(std::calloc(Max, 1));
    return P.Keys && P.Ids && P.Names && P.Lens;
  };
  bool Ok = AllocAddrPool(G.Vars, MaxVars, 'v') &&
            AllocAddrPool(G.Locks, MaxLocks, 'm');
  G.Labels.Max = MaxLabels;
  G.Labels.TableCap = MaxLabels * 2;
  G.Labels.Keys = static_cast<std::atomic<uint64_t> *>(
      std::calloc(G.Labels.TableCap, sizeof(std::atomic<uint64_t>)));
  G.Labels.Ids =
      static_cast<uint32_t *>(std::calloc(G.Labels.TableCap, sizeof(uint32_t)));
  G.Labels.Names =
      static_cast<char(*)[LabelNameCap]>(std::calloc(MaxLabels, LabelNameCap));
  G.Labels.Lens = static_cast<uint8_t *>(std::calloc(MaxLabels, 1));
  Ok = Ok && G.Labels.Keys && G.Labels.Ids && G.Labels.Names && G.Labels.Lens;

  G.ThreadKeys = static_cast<std::atomic<uint64_t> *>(
      std::calloc(MaxMappedThreads * 2, sizeof(std::atomic<uint64_t>)));
  G.ThreadTids = static_cast<uint32_t *>(
      std::calloc(MaxMappedThreads * 2, sizeof(uint32_t)));

  // Frame scratch, sized for the worst case: every registry fully
  // unemitted plus a full event buffer.
  G.ScratchCap = binfmt::FrameHeaderSize +
                 static_cast<size_t>(MaxVars + MaxLocks) * (AddrNameCap + 2) +
                 static_cast<size_t>(MaxLabels) * (LabelNameCap + 2) +
                 static_cast<size_t>(G.Cfg.BufferEvents) * 11 + 64;
  G.Scratch = static_cast<char *>(std::malloc(G.ScratchCap));
  Ok = Ok && G.Scratch && G.ThreadKeys && G.ThreadTids;

  if (!Ok || !openOutput(G.Cfg.OutPath)) {
    std::fprintf(stderr,
                 "velodrome-trace: cannot open trace output '%s'; tracing "
                 "disabled\n",
                 G.Cfg.OutPath);
    G.Disabled = true;
    TlsInRuntime = false;
    return;
  }

  ::pthread_key_create(&G.Key, veloKeyDtor);
  G.NextTid.store(1, std::memory_order_relaxed);
  if (!allocThreadState(0)) { // the initial thread is tid 0
    G.Disabled = true;
    TlsInRuntime = false;
    return;
  }

  ::pthread_atfork(atforkPrepare, atforkParent, atforkChild);
  std::atexit(onExit);
  for (int I = 0; I < 5; ++I) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = fatalHandler;
    ::sigemptyset(&SA.sa_mask);
    ::sigaction(FatalSigs[I], &SA, &G.OldSig[I]);
  }
  TlsInRuntime = false;
}

} // namespace
} // namespace preload
} // namespace velo

//===----------------------------------------------------------------------===//
// C API (called from Interpose.c)
//===----------------------------------------------------------------------===//

using namespace velo;
using namespace velo::preload;

extern "C" {

void velo_rt_init(void) {
  int S = InitState.load(std::memory_order_acquire);
  if (S == 2)
    return;
  int Expected = 0;
  if (InitState.compare_exchange_strong(Expected, 1,
                                        std::memory_order_acq_rel)) {
    doInit();
    InitState.store(2, std::memory_order_release);
    return;
  }
  // Another thread is initializing; in practice init happens on the main
  // thread before any other exists, but don't record half-initialized.
  while (InitState.load(std::memory_order_acquire) != 2)
    ::sched_yield();
}

int velo_rt_active(void) {
  return InitState.load(std::memory_order_acquire) == 2 && !G.Disabled &&
         !G.Dead.load(std::memory_order_relaxed);
}

int velo_rt_in_runtime(void) { return TlsInRuntime; }

void velo_rt_lock_acquired(void *Mutex) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = ensureSelf();
  if (!T)
    return;
  uint32_t Id =
      poolIntern(G.Locks, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Mutex)));
  if (Id == UINT32_MAX) {
    G.Drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (uint32_t I = 0; I < T->HeldCount; ++I)
    if (T->Held[I].Lock == Id) { // recursive re-acquire: filtered
      ++T->Held[I].Depth;
      return;
    }
  if (T->HeldCount == MaxHeldLocks) {
    G.Drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  T->Held[T->HeldCount++] = {Id, 1};
  record(T, static_cast<uint8_t>(Op::Acquire), Id);
}

void velo_rt_lock_releasing(void *Mutex) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = TlsState;
  if (!T)
    return;
  uint32_t Id =
      poolLookup(G.Locks, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Mutex)));
  if (Id == UINT32_MAX)
    return;
  for (uint32_t I = 0; I < T->HeldCount; ++I) {
    if (T->Held[I].Lock != Id)
      continue;
    if (--T->Held[I].Depth > 0)
      return; // recursive unlock, lock still held
    T->Held[I] = T->Held[--T->HeldCount];
    record(T, static_cast<uint8_t>(Op::Release), Id);
    // The sync-policy linchpin: this critical section's events hit the
    // file before the real unlock lets the next holder in.
    syncFlush(T);
    return;
  }
}

uint32_t velo_rt_fork_child(void) {
  Guard Gd;
  if (!Gd.Armed || G.Dead.load(std::memory_order_relaxed))
    return UINT32_MAX;
  ThreadState *T = ensureSelf();
  if (!T)
    return UINT32_MAX;
  uint32_t Child = G.NextTid.fetch_add(1, std::memory_order_relaxed);
  if (Child >= MaxTids)
    return UINT32_MAX;
  record(T, static_cast<uint8_t>(Op::Fork), Child);
  // Regardless of flush policy: the child may flush its own events at any
  // time, and the file must show the fork first.
  flushNow(T);
  return Child;
}

void velo_rt_child_start(uint32_t Tid) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  if (!TlsState)
    allocThreadState(Tid);
}

void velo_rt_child_created(uint32_t Tid, uint64_t PthreadId) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  threadMapInsert(PthreadId, Tid);
}

void velo_rt_joined(uint64_t PthreadId) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  uint32_t Child = threadMapTake(PthreadId);
  if (Child == UINT32_MAX)
    return;
  ThreadState *T = ensureSelf();
  if (!T)
    return;
  record(T, static_cast<uint8_t>(Op::Join), Child);
}

void velo_rt_thread_exit(void) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = TlsState;
  if (T)
    flushNow(T);
}

void velo_rt_read(const void *Addr) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = ensureSelf();
  if (!T)
    return;
  if (G.Cfg.SampleEvery > 1 && (T->SampleTick++ % G.Cfg.SampleEvery) != 0)
    return;
  uint32_t Id =
      poolIntern(G.Vars, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Addr)));
  if (Id == UINT32_MAX) {
    G.Drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  record(T, static_cast<uint8_t>(Op::Read), Id);
}

void velo_rt_write(const void *Addr) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = ensureSelf();
  if (!T)
    return;
  if (G.Cfg.SampleEvery > 1 && (T->SampleTick++ % G.Cfg.SampleEvery) != 0)
    return;
  uint32_t Id =
      poolIntern(G.Vars, static_cast<uint64_t>(reinterpret_cast<uintptr_t>(Addr)));
  if (Id == UINT32_MAX) {
    G.Drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  record(T, static_cast<uint8_t>(Op::Write), Id);
}

void velo_rt_begin(const char *Label) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = ensureSelf();
  if (!T)
    return;
  uint32_t Id = NoLabel;
  if (Label && Label[0] != '\0') {
    Id = labelIntern(G.Labels, Label);
    if (Id == UINT32_MAX)
      Id = NoLabel; // label pool full: keep the block, lose the name
  }
  record(T, static_cast<uint8_t>(Op::Begin), Id);
}

void velo_rt_end(void) {
  Guard Gd;
  if (!Gd.Armed)
    return;
  ThreadState *T = TlsState;
  if (!T)
    return;
  record(T, static_cast<uint8_t>(Op::End), 0);
}

} // extern "C"
