//===- preload/TraceRuntime.h - Preload tracer core --------------*- C -*-===//
//
// The engine behind libvelodrome-trace.so: per-thread bounded event
// buffers drained into a VELOTRC container through EINTR-safe write
// wrappers, with crash-consistent flushing (docs/TRACING.md). This header
// is the narrow surface the pthread interposers (Interpose.c, compiled as
// plain C so the glibc prototypes can be re-defined portably) call; every
// entry point is safe to call at any time — before initialization, after
// a write error, with tracing disabled — and degrades to a no-op.
//
// Robustness invariants the implementation maintains:
//
//  * The target never blocks indefinitely or crashes because of tracing:
//    a full buffer flushes (brief file I/O) or, once the writer is dead,
//    drops events under a counter reported at exit.
//  * The container on disk is always either complete (index + trailer,
//    written by the atexit hook) or a clean frame prefix that
//    `velodrome-check --salvage` accepts: frames are written atomically
//    under one writer lock, and a fatal signal appends the crashing
//    thread's buffer as a final frame via async-signal-safe code only.
//  * fork() never corrupts the parent's file: the child drops inherited
//    buffers and either re-opens "<out>.<pid>" lazily (so fork+exec
//    leaves no debris) or disables itself, per VELO_TRACE_FORK.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_PRELOAD_TRACERUNTIME_H
#define VELO_PRELOAD_TRACERUNTIME_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/// One-time initialization: parse VELO_TRACE_*, open the container, write
/// its header, install the atexit/fatal-signal/fork hooks, and register
/// the calling thread as tid 0. Idempotent; called from the library
/// constructor and lazily from every interposer.
void velo_rt_init(void);

/// True while events should be recorded (initialized, not disabled by a
/// bad environment or I/O failure, not dead after a crash flush).
int velo_rt_active(void);

/// True while the calling thread is inside the runtime itself (flushing,
/// interning). Interposers skip recording then: any pthread operation the
/// runtime's own bookkeeping triggers (e.g. via malloc) must not recurse
/// into the trace.
int velo_rt_in_runtime(void);

/// Lock events. velo_rt_lock_acquired is called after the real
/// lock/trylock succeeds; velo_rt_lock_releasing before the real unlock
/// (it records the release and, under the sync flush policy, flushes the
/// thread's buffer so the file orders this critical section before the
/// next holder's). Re-entrant acquires of a recursive mutex are filtered
/// to one event, matching the event model.
void velo_rt_lock_acquired(void *Mutex);
void velo_rt_lock_releasing(void *Mutex);

/// Thread lifecycle. velo_rt_fork_child allocates the child tid, records
/// fork(self, child) and flushes it (the file must order the fork before
/// any child event); returns UINT32_MAX when the child cannot be traced
/// (tid space exhausted / tracing off) — the caller then creates the
/// thread un-traced. velo_rt_child_start runs first inside the new
/// thread; velo_rt_child_created maps the pthread handle to the tid so a
/// later pthread_join can be attributed; velo_rt_thread_exit flushes the
/// calling thread's remaining buffer. A create that fails after
/// velo_rt_fork_child leaves an orphan fork event in the trace — the
/// sanitizer's lenient mode repairs it.
uint32_t velo_rt_fork_child(void);
void velo_rt_child_start(uint32_t Tid);
void velo_rt_child_created(uint32_t Tid, uint64_t PthreadId);
void velo_rt_joined(uint64_t PthreadId);
void velo_rt_thread_exit(void);

/// Annotation events (accesses sampled per VELO_TRACE_SAMPLE).
void velo_rt_read(const void *Addr);
void velo_rt_write(const void *Addr);
void velo_rt_begin(const char *Label);
void velo_rt_end(void);

#ifdef __cplusplus
}
#endif

#endif // VELO_PRELOAD_TRACERUNTIME_H
