/*===- preload/Interpose.c - pthread interposition entry points ----------===*
 *
 * The LD_PRELOAD face of libvelodrome-trace.so: strong definitions of the
 * pthread symbols we trace (mutex lock/trylock/unlock, create/join/exit)
 * and of the velo_trace_* annotation API, each forwarding the real work
 * to libc through dlsym(RTLD_NEXT) and the event bookkeeping to the
 * runtime (TraceRuntime.h).
 *
 * This file is plain C on purpose: glibc's pthread prototypes carry
 * exception-specifier macros (__THROW and friends) whose C++ expansion
 * varies across glibc versions, making C++ redefinitions brittle. C has
 * no exception specifiers, so the definitions here match any libc.
 *
 * Interposition discipline: the real call always happens, first, exactly
 * once — recording strictly follows a successful real operation (or, for
 * unlock, precedes it: the release must reach the trace file before the
 * next holder can enter). When tracing is off, dead, or re-entered from
 * the runtime's own bookkeeping, every wrapper is a pure pass-through,
 * so the target runs unchanged.
 *
 *===---------------------------------------------------------------------===*/

#ifndef _GNU_SOURCE
#define _GNU_SOURCE /* RTLD_NEXT */
#endif

#include <dlfcn.h>
#include <pthread.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>

#include "preload/TraceRuntime.h"

typedef int (*MutexFn)(pthread_mutex_t *);
typedef int (*CreateFn)(pthread_t *, const pthread_attr_t *,
                        void *(*)(void *), void *);
typedef int (*JoinFn)(pthread_t, void **);
typedef void (*ExitFn)(void *) __attribute__((__noreturn__));

static struct {
  MutexFn Lock;
  MutexFn Trylock;
  MutexFn Unlock;
  CreateFn Create;
  JoinFn Join;
  ExitFn Exit;
} Real;

/* Resolve the libc definitions. Idempotent, and benign if two early
 * threads race (both write identical values). Called lazily from every
 * wrapper because interposed functions can run before this library's
 * constructor (from another preloaded library's constructor, say). */
static void resolveReal(void) {
  if (Real.Lock)
    return;
  /* The (void **) dance sidesteps the ISO C object/function pointer
   * conversion warning; POSIX guarantees dlsym makes this valid. */
  *(void **)&Real.Trylock = dlsym(RTLD_NEXT, "pthread_mutex_trylock");
  *(void **)&Real.Unlock = dlsym(RTLD_NEXT, "pthread_mutex_unlock");
  *(void **)&Real.Create = dlsym(RTLD_NEXT, "pthread_create");
  *(void **)&Real.Join = dlsym(RTLD_NEXT, "pthread_join");
  *(void **)&Real.Exit = dlsym(RTLD_NEXT, "pthread_exit");
  *(void **)&Real.Lock = dlsym(RTLD_NEXT, "pthread_mutex_lock");
  if (!Real.Lock || !Real.Trylock || !Real.Unlock || !Real.Create ||
      !Real.Join || !Real.Exit) {
    /* No libc underneath us means nothing can work; this cannot happen
     * in a sane process, so die loudly rather than deadlock quietly. */
    fprintf(stderr, "velodrome-trace: cannot resolve pthread symbols\n");
    abort();
  }
}

__attribute__((constructor)) static void veloTraceCtor(void) {
  resolveReal();
  velo_rt_init();
}

static int tracing(void) { return velo_rt_active() && !velo_rt_in_runtime(); }

/*===--------------------------------------------------------------------===*
 * Mutexes
 *===--------------------------------------------------------------------===*/

int pthread_mutex_lock(pthread_mutex_t *M) {
  resolveReal();
  int RC = Real.Lock(M);
  if (RC == 0 && tracing())
    velo_rt_lock_acquired(M);
  return RC;
}

int pthread_mutex_trylock(pthread_mutex_t *M) {
  resolveReal();
  int RC = Real.Trylock(M);
  if (RC == 0 && tracing())
    velo_rt_lock_acquired(M);
  return RC;
}

int pthread_mutex_unlock(pthread_mutex_t *M) {
  resolveReal();
  if (tracing())
    velo_rt_lock_releasing(M); /* record + sync-flush before the unlock */
  return Real.Unlock(M);
}

/*===--------------------------------------------------------------------===*
 * Threads
 *===--------------------------------------------------------------------===*/

struct StartPack {
  void *(*Fn)(void *);
  void *Arg;
  uint32_t Tid;
};

static void *trampoline(void *VP) {
  struct StartPack P = *(struct StartPack *)VP;
  free(VP);
  velo_rt_child_start(P.Tid);
  void *R = P.Fn(P.Arg);
  velo_rt_thread_exit(); /* pthread_exit paths flush via the TSD dtor */
  return R;
}

int pthread_create(pthread_t *Th, const pthread_attr_t *Attr,
                   void *(*Fn)(void *), void *Arg) {
  resolveReal();
  if (!tracing())
    return Real.Create(Th, Attr, Fn, Arg);
  uint32_t Tid = velo_rt_fork_child();
  if (Tid == UINT32_MAX) /* untraceable child: create it untraced */
    return Real.Create(Th, Attr, Fn, Arg);
  struct StartPack *P = malloc(sizeof *P);
  if (!P)
    return Real.Create(Th, Attr, Fn, Arg);
  P->Fn = Fn;
  P->Arg = Arg;
  P->Tid = Tid;
  int RC = Real.Create(Th, Attr, trampoline, P);
  if (RC != 0) {
    /* The fork event is already in the trace; the sanitizer's lenient
     * mode repairs orphan forks, so a failed create stays harmless. */
    free(P);
    return RC;
  }
  velo_rt_child_created(Tid, (uint64_t)*Th);
  return 0;
}

int pthread_join(pthread_t Th, void **RetVal) {
  resolveReal();
  int RC = Real.Join(Th, RetVal);
  if (RC == 0 && tracing())
    velo_rt_joined((uint64_t)Th);
  return RC;
}

void pthread_exit(void *RetVal) {
  resolveReal();
  if (!velo_rt_in_runtime())
    velo_rt_thread_exit();
  Real.Exit(RetVal);
  __builtin_unreachable();
}

/*===--------------------------------------------------------------------===*
 * Annotations (strong definitions; targets declare these weak, see
 * velo_trace.h)
 *===--------------------------------------------------------------------===*/

void velo_trace_read(const void *Addr) { velo_rt_read(Addr); }

void velo_trace_write(const void *Addr) { velo_rt_write(Addr); }

void velo_trace_begin(const char *Label) { velo_rt_begin(Label); }

void velo_trace_end(void) { velo_rt_end(); }
