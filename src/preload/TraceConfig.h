//===- preload/TraceConfig.h - VELO_TRACE_* environment parsing -*- C++ -*-===//
//
// Configuration for the LD_PRELOAD tracer, read once at load time from the
// VELO_TRACE_* environment variables (docs/TRACING.md documents each knob).
// The validation contract is strict: a malformed value never half-applies —
// parseTraceConfig reports exactly one diagnostic and the caller disables
// tracing entirely, so the target always runs, traced or not.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_PRELOAD_TRACECONFIG_H
#define VELO_PRELOAD_TRACECONFIG_H

#include <cstddef>
#include <cstdint>

namespace velo {
namespace preload {

struct TraceConfig {
  /// Output container path (VELO_TRACE_OUT; default velodrome-<pid>.vtrc).
  char OutPath[3072];
  /// Keep 1 of every N annotated accesses per thread (VELO_TRACE_SAMPLE;
  /// default 1 = every access). Lock and thread events are never sampled.
  uint64_t SampleEvery = 1;
  /// Per-thread event buffer capacity (VELO_TRACE_BUFFER_EVENTS;
  /// default 4096, clamped range [64, 1<<20]).
  uint32_t BufferEvents = 4096;
  /// VELO_TRACE_FLUSH: true for "sync" (default; flush before every
  /// unlock and thread create, giving exact per-lock cross-thread order
  /// in the file), false for "buffer" (flush only when full or at
  /// thread/process end; faster, approximate order).
  bool SyncFlush = true;
  /// VELO_TRACE_FORK: true for "reopen" (default; a forked child traces
  /// into "<out>.<pid>"), false for "off" (child stops tracing). Either
  /// way the parent's container is never touched by the child.
  bool ReopenOnFork = true;
};

/// Read VELO_TRACE_* from the environment into C. Returns true when every
/// set variable parses; on the first malformed value, returns false with a
/// one-line description (no trailing newline) in Diag — the caller prints
/// it once and disables tracing.
bool parseTraceConfig(TraceConfig &C, char *Diag, size_t DiagLen);

} // namespace preload
} // namespace velo

#endif // VELO_PRELOAD_TRACECONFIG_H
