//===- deadlock/DeadlockDetector.cpp - Lock-order deadlock check ----------===//

#include "deadlock/DeadlockDetector.h"

#include "report/Report.h"

#include <algorithm>
#include <set>

namespace velo {

void DeadlockDetector::beginAnalysis(const SymbolTable &Syms) {
  Backend::beginAnalysis(Syms);
  Held.clear();
  Edges.clear();
}

std::vector<LockId> &DeadlockDetector::held(Tid T) {
  if (T >= Held.size())
    Held.resize(T + 1);
  return Held[T];
}

void DeadlockDetector::addEdge(LockId Src, LockId Dst, const EdgeInst &Inst) {
  std::vector<EdgeInst> &Insts = Edges[{Src, Dst}];
  // One instance per (thread, gate set) is enough: extra copies cannot
  // enable a cycle the first one does not.
  for (const EdgeInst &Have : Insts)
    if (Have.Thread == Inst.Thread && Have.Gates == Inst.Gates)
      return;
  if (Insts.size() >= MaxInstPerEdge)
    return;
  Insts.push_back(Inst);
}

void DeadlockDetector::onEvent(const Event &E) {
  countEvent();
  switch (E.Kind) {
  case Op::Acquire: {
    std::vector<LockId> &H = held(E.Thread);
    // The sanitizer repairs unbalanced locking, but stay defensive:
    // a reentrant acquire adds no ordering information.
    if (std::find(H.begin(), H.end(), E.lock()) != H.end())
      return;
    if (!H.empty()) {
      EdgeInst Inst;
      Inst.Thread = E.Thread;
      Inst.Ordinal = eventOrdinal();
      Inst.Gates = H;
      std::sort(Inst.Gates.begin(), Inst.Gates.end());
      for (LockId Src : H)
        addEdge(Src, E.lock(), Inst);
    }
    H.push_back(E.lock());
    return;
  }
  case Op::Release: {
    std::vector<LockId> &H = held(E.Thread);
    for (size_t I = H.size(); I > 0; --I) {
      if (H[I - 1] == E.lock()) {
        H.erase(H.begin() + (I - 1));
        return;
      }
    }
    return;
  }
  case Op::Read:
  case Op::Write:
  case Op::Begin:
  case Op::End:
  case Op::Fork:
  case Op::Join:
    return;
  }
}

void DeadlockDetector::endAnalysis() { searchCycles(); }

std::string DeadlockDetector::lockName(LockId M) const {
  return Symbols ? Symbols->lockName(M) : ("m" + std::to_string(M));
}

//===----------------------------------------------------------------------===//
// Cycle search. Elementary cycles are enumerated canonically — each cycle
// exactly once, rooted at its smallest lock id, neighbors in ascending
// order — so the warning list is deterministic regardless of input
// container, pipeline mode, or resume point. Both the cycle length and the
// total step count are bounded; the bounds are far above anything a real
// lock graph produces and exist to keep fuzzer-generated graphs cheap.
//===----------------------------------------------------------------------===//

void DeadlockDetector::searchCycles() {
  std::map<LockId, std::vector<LockId>> Adj;
  for (const auto &KV : Edges)
    Adj[KV.first.first].push_back(KV.first.second);
  for (auto &KV : Adj)
    std::sort(KV.second.begin(), KV.second.end());

  size_t Steps = 0;
  std::vector<LockId> Path;
  for (const auto &KV : Adj) {
    Path.assign(1, KV.first);
    dfsCycles(KV.first, KV.first, Adj, Path, Steps);
    if (Steps >= MaxSearchSteps)
      return;
    if (ReportManager::capReached(warnings().size(), Opts.MaxWarnings))
      return;
  }
}

void DeadlockDetector::dfsCycles(
    LockId Start, LockId Cur, const std::map<LockId, std::vector<LockId>> &Adj,
    std::vector<LockId> &Path, size_t &Steps) {
  auto It = Adj.find(Cur);
  if (It == Adj.end())
    return;
  for (LockId Next : It->second) {
    if (++Steps >= MaxSearchSteps)
      return;
    if (ReportManager::capReached(warnings().size(), Opts.MaxWarnings))
      return;
    if (Next == Start) {
      if (Path.size() < 2)
        continue; // no self-loops in the order graph anyway
      std::vector<const EdgeInst *> Chosen;
      if (chooseInstances(Path, 0, Chosen))
        reportCycle(Path, Chosen);
      continue;
    }
    // Only visit locks above the root: every elementary cycle is found
    // exactly once, from its minimal node.
    if (Next < Start || Path.size() >= MaxCycleLen)
      continue;
    if (std::find(Path.begin(), Path.end(), Next) != Path.end())
      continue;
    Path.push_back(Next);
    dfsCycles(Start, Next, Adj, Path, Steps);
    Path.pop_back();
  }
}

/// Pick one witnessed instance per cycle edge such that the witnessing
/// threads are pairwise distinct and the gate sets pairwise disjoint. Any
/// shared thread or shared gate lock serializes the cycle and suppresses
/// the report.
bool DeadlockDetector::chooseInstances(const std::vector<LockId> &Cycle,
                                       size_t EdgeIdx,
                                       std::vector<const EdgeInst *> &Chosen) {
  if (EdgeIdx == Cycle.size())
    return true;
  LockId Src = Cycle[EdgeIdx];
  LockId Dst = Cycle[(EdgeIdx + 1) % Cycle.size()];
  auto It = Edges.find({Src, Dst});
  if (It == Edges.end())
    return false;
  for (const EdgeInst &Cand : It->second) {
    bool Ok = true;
    for (const EdgeInst *Prev : Chosen) {
      if (Prev->Thread == Cand.Thread) {
        Ok = false;
        break;
      }
      // Gate sets are sorted; any common element kills the candidate.
      for (LockId G : Cand.Gates) {
        if (std::binary_search(Prev->Gates.begin(), Prev->Gates.end(), G)) {
          Ok = false;
          break;
        }
      }
      if (!Ok)
        break;
    }
    if (!Ok)
      continue;
    Chosen.push_back(&Cand);
    if (chooseInstances(Cycle, EdgeIdx + 1, Chosen))
      return true;
    Chosen.pop_back();
  }
  return false;
}

void DeadlockDetector::reportCycle(const std::vector<LockId> &Cycle,
                                   const std::vector<const EdgeInst *> &Chosen) {
  Warning W;
  W.Analysis = "deadlock";
  W.Category = "deadlock";
  W.Method = NoLabel;
  W.RuleId = "VELO-DLK-001";
  W.Thread = Chosen.front()->Thread;
  W.Ordinal = Chosen.front()->Ordinal;

  std::string Msg = "potential deadlock: lock-order cycle ";
  for (size_t I = 0; I < Cycle.size(); ++I) {
    Msg += lockName(Cycle[I]);
    Msg += " -> ";
  }
  Msg += lockName(Cycle.front());
  for (size_t I = 0; I < Cycle.size(); ++I) {
    const EdgeInst *Inst = Chosen[I];
    LockId Dst = Cycle[(I + 1) % Cycle.size()];
    std::string Note = "acquires " + lockName(Dst) + " while holding ";
    for (size_t G = 0; G < Inst->Gates.size(); ++G) {
      if (G)
        Note += ", ";
      Note += lockName(Inst->Gates[G]);
    }
    Msg += "\n    T" + std::to_string(Inst->Thread) + " " + Note;

    WarningSite Site;
    Site.Thread = Inst->Thread;
    Site.Ordinal = Inst->Ordinal;
    Site.Method = NoLabel;
    Site.Note = Note;
    W.Related.push_back(std::move(Site));
  }
  W.Message = std::move(Msg);
  report(std::move(W));
}

//===----------------------------------------------------------------------===//
// Snapshot round-trip: the complete order graph and per-thread held sets,
// in deterministic (map / tid) order.
//===----------------------------------------------------------------------===//

void DeadlockDetector::serialize(SnapshotWriter &W) const {
  serializeBase(W);
  W.u64(Held.size());
  for (const std::vector<LockId> &H : Held) {
    W.u64(H.size());
    for (LockId M : H)
      W.u32(M);
  }
  W.u64(Edges.size());
  for (const auto &KV : Edges) {
    W.u32(KV.first.first);
    W.u32(KV.first.second);
    W.u64(KV.second.size());
    for (const EdgeInst &Inst : KV.second) {
      W.u32(Inst.Thread);
      W.u64(Inst.Ordinal);
      W.u64(Inst.Gates.size());
      for (LockId G : Inst.Gates)
        W.u32(G);
    }
  }
}

bool DeadlockDetector::deserialize(SnapshotReader &R) {
  if (!deserializeBase(R))
    return false;
  uint64_t NumThreads = R.u64();
  if (NumThreads > (1u << 24))
    return false;
  Held.clear();
  Held.resize(NumThreads);
  for (uint64_t T = 0; T < NumThreads && !R.failed(); ++T) {
    uint64_t N = R.u64();
    if (N > (1u << 24))
      return false;
    Held[T].reserve(N);
    for (uint64_t I = 0; I < N && !R.failed(); ++I)
      Held[T].push_back(R.u32());
  }
  uint64_t NumEdges = R.u64();
  if (NumEdges > (1u << 24))
    return false;
  Edges.clear();
  for (uint64_t I = 0; I < NumEdges && !R.failed(); ++I) {
    LockId Src = R.u32();
    LockId Dst = R.u32();
    uint64_t NumInst = R.u64();
    if (NumInst > MaxInstPerEdge)
      return false;
    std::vector<EdgeInst> &Insts = Edges[{Src, Dst}];
    for (uint64_t K = 0; K < NumInst && !R.failed(); ++K) {
      EdgeInst Inst;
      Inst.Thread = R.u32();
      Inst.Ordinal = R.u64();
      uint64_t NumGates = R.u64();
      if (NumGates > (1u << 24))
        return false;
      Inst.Gates.reserve(NumGates);
      for (uint64_t G = 0; G < NumGates && !R.failed(); ++G)
        Inst.Gates.push_back(R.u32());
      Insts.push_back(std::move(Inst));
    }
  }
  return !R.failed();
}

} // namespace velo
