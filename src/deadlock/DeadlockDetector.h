//===- deadlock/DeadlockDetector.h - Lock-order deadlock check --*- C++ -*-===//
//
// GoodLock-style potential-deadlock detector: record a lock-order edge
// A -> B every time a thread acquires B while holding A, then look for
// cycles in the order graph at end of trace. A cycle is reported only if
// its edges can be witnessed by pairwise-distinct threads whose held-lock
// ("gate") sets at the acquisition points are pairwise disjoint — the
// classic gate-lock suppression that keeps cycles serialized by a common
// outer lock out of the report.
//
// The detector is a pure observer: it never affects the serializability
// verdict (sawViolation() stays false) and reports findings under rule
// VELO-DLK-001 with one relatedLocation per cycle edge.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_DEADLOCK_DEADLOCKDETECTOR_H
#define VELO_DEADLOCK_DEADLOCKDETECTOR_H

#include "analysis/Backend.h"

#include <map>
#include <utility>
#include <vector>

namespace velo {

struct DeadlockOptions {
  /// Maximum warnings to keep; 0 means unlimited.
  size_t MaxWarnings = 16;
};

/// Lock-order-graph deadlock detector (--backend=deadlock).
class DeadlockDetector : public Backend {
public:
  explicit DeadlockDetector(const DeadlockOptions &O = DeadlockOptions())
      : Opts(O) {}

  const char *name() const override { return "Deadlock"; }

  void beginAnalysis(const SymbolTable &Syms) override;
  void onEvent(const Event &E) override;
  void endAnalysis() override;

  bool supportsSnapshot() const override { return true; }
  void serialize(SnapshotWriter &W) const override;
  bool deserialize(SnapshotReader &R) override;

  /// Number of distinct order-graph edges observed so far.
  size_t edgeCount() const { return Edges.size(); }

private:
  /// One witnessed acquisition for an order-graph edge: who acquired the
  /// destination lock, where in the sanitized stream, and the full set of
  /// locks held at that moment (sorted; includes the source lock).
  struct EdgeInst {
    Tid Thread = 0;
    uint64_t Ordinal = 0;
    std::vector<LockId> Gates;
  };

  static constexpr size_t MaxInstPerEdge = 4;
  static constexpr size_t MaxCycleLen = 8;
  static constexpr size_t MaxSearchSteps = 100000;

  std::vector<LockId> &held(Tid T);
  void addEdge(LockId Src, LockId Dst, const EdgeInst &Inst);
  void searchCycles();
  void dfsCycles(LockId Start, LockId Cur,
                 const std::map<LockId, std::vector<LockId>> &Adj,
                 std::vector<LockId> &Path, size_t &Steps);
  bool chooseInstances(const std::vector<LockId> &Cycle, size_t EdgeIdx,
                       std::vector<const EdgeInst *> &Chosen);
  void reportCycle(const std::vector<LockId> &Cycle,
                   const std::vector<const EdgeInst *> &Chosen);
  std::string lockName(LockId M) const;

  DeadlockOptions Opts;
  std::vector<std::vector<LockId>> Held; ///< Per-thread held-lock stack.
  std::map<std::pair<LockId, LockId>, std::vector<EdgeInst>> Edges;
};

} // namespace velo

#endif // VELO_DEADLOCK_DEADLOCKDETECTOR_H
