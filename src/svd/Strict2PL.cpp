//===- svd/Strict2PL.cpp - Strict two-phase-locking checker ---------------===//

#include "svd/Strict2PL.h"

namespace velo {

void Strict2PL::beginAnalysis(const SymbolTable &Syms) {
  Backend::beginAnalysis(Syms);
  Engine.clear();
  Threads.clear();
  Flagged.clear();
}

void Strict2PL::violate(ThreadState &TS, const Event &E, const char *Why) {
  if (TS.ViolatedThisTxn)
    return;
  TS.ViolatedThisTxn = true;
  if (!Flagged.insert(TS.Outer).second)
    return;
  Warning W;
  W.Analysis = "strict2pl";
  W.Category = "atomicity";
  W.Method = TS.Outer;
  W.RuleId = "VELO-ATOM-004";
  W.Thread = E.Thread;
  W.Ordinal = eventOrdinal();
  W.Message =
      "strict-2PL violation in " +
      (Symbols ? Symbols->labelName(TS.Outer) : std::to_string(TS.Outer)) +
      ": " + Why + " (T" + std::to_string(E.Thread) + ")";
  report(std::move(W));
}

void Strict2PL::onEvent(const Event &E) {
  countEvent();
  ThreadState &TS = Threads[E.Thread];
  switch (E.Kind) {
  case Op::Begin:
    if (TS.Depth++ == 0) {
      TS.Shrinking = false;
      TS.Outer = E.label();
      TS.ViolatedThisTxn = false;
    }
    return;
  case Op::End:
    if (TS.Depth > 0)
      --TS.Depth;
    return;
  case Op::Acquire:
    Engine.onAcquire(E.Thread, E.lock());
    ++TS.LocksHeld;
    if (TS.Depth > 0 && TS.Shrinking)
      violate(TS, E, "lock acquired after the shrinking phase began");
    return;
  case Op::Release:
    Engine.onRelease(E.Thread, E.lock());
    if (TS.LocksHeld > 0)
      --TS.LocksHeld;
    if (TS.Depth > 0)
      TS.Shrinking = true;
    return;
  case Op::Read:
  case Op::Write: {
    bool Uncovered =
        Engine.accessIsUnprotected(E.Thread, E.var(), E.Kind == Op::Write);
    if (TS.Depth == 0)
      return;
    if (!Engine.isSharedVar(E.var()))
      return; // thread-local data is outside 2PL's scope
    if (TS.LocksHeld == 0 && Uncovered)
      violate(TS, E, "shared access with no lock held");
    else if (Uncovered)
      violate(TS, E, "shared access not covered by a consistent lockset");
    else if (TS.Shrinking)
      violate(TS, E, "shared access after the shrinking phase began");
    return;
  }
  case Op::Fork:
  case Op::Join:
    return; // not modeled, as in the lockset baselines
  }
}

} // namespace velo
