//===- svd/Strict2PL.h - Strict two-phase-locking checker -------*- C++ -*-===//
//
// The related-work baseline of Xu, Bodik & Hill (PLDI 2005), as the paper
// characterizes it: "a precise dynamic analysis for enforcing Strict
// 2-Phase Locking, a sufficient but not necessary condition for ensuring
// serializability. Hence violations, while possibly worthy of
// investigation, do not necessarily imply that the observed trace is not
// serializable."
//
// Our rendition checks each declared atomic block against strict 2PL:
//
//   - growing phase only: no lock acquire after the transaction's first
//     release;
//   - every shared access must be covered: performed while at least one
//     lock is held whose coverage of that variable is consistent (the
//     variable's candidate lockset intersected with the held set is
//     non-empty), and before the first release.
//
// Strictly stronger than Lipton reduction (the Atomizer tolerates one
// non-mover; strict 2PL tolerates none), hence even more false alarms —
// the comparison tests pin down this containment on the paper's examples.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_SVD_STRICT2PL_H
#define VELO_SVD_STRICT2PL_H

#include "analysis/Backend.h"
#include "eraser/LockSetEngine.h"

#include <set>
#include <unordered_map>

namespace velo {

/// Strict-2PL conformance checker over declared atomic blocks.
class Strict2PL : public Backend {
public:
  const char *name() const override { return "Strict2PL"; }

  void beginAnalysis(const SymbolTable &Syms) override;
  void onEvent(const Event &E) override;

  const std::set<Label> &flaggedMethods() const { return Flagged; }

private:
  struct ThreadState {
    int Depth = 0;
    bool Shrinking = false; ///< a release has happened in this transaction
    Label Outer = NoLabel;
    bool ViolatedThisTxn = false;
    int LocksHeld = 0;
  };

  void violate(ThreadState &TS, const Event &E, const char *Why);

  LockSetEngine Engine;
  std::unordered_map<Tid, ThreadState> Threads;
  std::set<Label> Flagged;
};

} // namespace velo

#endif // VELO_SVD_STRICT2PL_H
