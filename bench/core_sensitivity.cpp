//===- bench/core_sensitivity.cpp - Warning stability across schedulers ---===//
//
// Section 6 remarks: "Interestingly, the number of warnings produced was
// fairly uniform when these experiments were repeated using only a single
// core, despite Velodrome being more sensitive to scheduling than other
// tools." This bench reproduces the comparison: per benchmark, the distinct
// ground-truth methods Velodrome witnesses under the deterministic
// cooperative scheduler (one runnable thread — the single-core analogue)
// versus free-running preemptive execution (the multicore analogue), each
// over the same number of runs.
//
// Usage: core_sensitivity [runs] [scale]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Velodrome.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

using namespace velo;
using namespace velo::bench;

namespace {

std::set<std::string> found(const Workload &W, int Runs,
                            RuntimeOptions::Mode Mode) {
  std::set<std::string> Out;
  for (int R = 0; R < Runs; ++R) {
    RuntimeOptions Opts;
    Opts.ExecMode = Mode;
    // Emulate fine preemption for the preemptive variant: on a single-core
    // host, short runs would otherwise execute nearly serially.
    Opts.PreemptEveryN = 8;
    Opts.SchedulerSeed = static_cast<uint64_t>(R) * 19 + 1;
    Opts.WorkloadSeed = static_cast<uint64_t>(R) * 23 + 5;
    VelodromeOptions VOpts;
    VOpts.EmitDot = false;
    Velodrome V(VOpts);
    Runtime RT(Opts, {&V});
    W.run(RT);
    for (const AtomicityViolation &Violation : V.violations())
      if (Violation.Method != NoLabel)
        Out.insert(RT.symbols().labelName(Violation.Method));
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  int Runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int Scale = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("Warning stability, single-core-style vs. multicore-style "
              "execution\n(%d runs each; distinct ground-truth methods "
              "witnessed by Velodrome)\n\n",
              Runs);

  TablePrinter Table({"Program", "Truth", "Deterministic", "FreeRunning"});
  size_t TotTruth = 0, TotDet = 0, TotFree = 0;
  for (const auto &W : makeAllWorkloads()) {
    W->Scale = Scale;
    std::set<std::string> Truth = truthSet(*W);
    auto Hits = [&](const std::set<std::string> &Found) {
      size_t N = 0;
      for (const std::string &M : Found)
        N += Truth.count(M);
      return N;
    };
    size_t Det = Hits(found(*W, Runs, RuntimeOptions::Mode::Deterministic));
    size_t Free = Hits(found(*W, Runs, RuntimeOptions::Mode::FreeRunning));
    Table.startRow();
    Table.cell(std::string(W->name()));
    Table.cell(static_cast<uint64_t>(Truth.size()));
    Table.cell(static_cast<uint64_t>(Det));
    Table.cell(static_cast<uint64_t>(Free));
    TotTruth += Truth.size();
    TotDet += Det;
    TotFree += Free;
  }
  Table.startRow();
  Table.cell(std::string("Total"));
  Table.cell(static_cast<uint64_t>(TotTruth));
  Table.cell(static_cast<uint64_t>(TotDet));
  Table.cell(static_cast<uint64_t>(TotFree));

  std::printf("%s\n", Table.str().c_str());
  std::printf("paper's observation: counts stay fairly uniform across core "
              "configurations.\n");
  return 0;
}
