//===- bench/parallel_pipeline.cpp - Parallel-pipeline speedup bench ------===//
//
// Measures the parallel analysis pipeline (src/parallel) against the
// sequential streaming loop on a multi-back-end run: one synthetic trace,
// five back-ends (Velodrome, AeroDrome, Eraser, HB, Atomizer — the
// reference checker BasicVelodrome is excluded, its quadratic replay would
// swamp the measurement), events/sec and speedup reported.
//
// The workload is mostly thread-local work with occasional lock-guarded
// shared transactions — the shape the paper's benchmarks have, and the one
// a deployment would stream.
//
//   parallel_pipeline [--events=N] [--threads=N] [--workers=N] [--reps=N]
//                     [--seed=N] [--check] [--min-speedup=X] [--keep]
//
// --check first verifies the hard invariant (identical verdicts and
// warning lists between the sequential and parallel runs; this part always
// runs and always gates), then gates the speedup: >= --min-speedup
// (default 1.8) when the host has at least 4 hardware threads. On smaller
// hosts the speedup gate is skipped — a 1-core container cannot
// demonstrate parallel speedup — unless --min-speedup was given
// explicitly. Exit status: 0 pass, 1 gate failed, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "aero/AeroDrome.h"
#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "eraser/Eraser.h"
#include "events/TraceGen.h"
#include "events/TraceSanitizer.h"
#include "events/TraceStream.h"
#include "events/TraceText.h"
#include "hbrace/HbRaceDetector.h"
#include "parallel/Pipeline.h"
#include "support/Stopwatch.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace velo;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: parallel_pipeline [options]\n"
               "  --events=N       approximate trace length (default "
               "2000000)\n"
               "  --threads=N      threads in the generated trace "
               "(default 8)\n"
               "  --workers=N      pipeline worker threads (default: one "
               "per back-end)\n"
               "  --reps=N         timing repetitions, best-of (default 3)\n"
               "  --seed=N         generator seed (default 1)\n"
               "  --check          gate: identical output, then speedup >= "
               "--min-speedup\n"
               "  --min-speedup=X  speedup gate (default 1.8; implies the "
               "gate runs\n"
               "                   even on hosts with < 4 hardware "
               "threads)\n"
               "  --keep           keep the generated trace file\n");
}

/// Write an approximately NumEvents-long well-formed trace to Path in
/// bounded memory. Mostly thread-local accesses (each thread hits its own
/// variable slice) with occasional lock-guarded shared transactions.
uint64_t writeBigTrace(const std::string &Path, uint64_t NumEvents,
                       uint32_t Threads, uint64_t Seed) {
  std::ofstream Out(Path);
  TraceGenOptions Opts;
  Opts.Threads = Threads;
  Opts.Vars = Threads * 16; // wide variable space: little contention
  Opts.Locks = 4;
  Opts.Steps = 20000;
  Opts.GuardedAccessPct = 70;
  uint64_t Written = 0;
  for (uint64_t Chunk = 0; Written < NumEvents; ++Chunk) {
    Trace T = generateRandomTrace(Seed * 7919 + Chunk + 1, Opts);
    Out << printTrace(T);
    Written += T.size();
  }
  return Written;
}

struct BackendSet {
  Velodrome Velo;
  AeroDrome Aero;
  Eraser Race;
  HbRaceDetector Hb;
  Atomizer Atom;
  std::vector<Backend *> all() {
    return {&Velo, &Aero, &Race, &Hb, &Atom};
  }
};

/// The sequential baseline: exactly velodrome-check's default streaming
/// loop shape (TraceStream -> TraceSanitizer -> every back-end in turn).
bool runSequential(const std::string &Path, BackendSet &Set,
                   uint64_t &EventsOut) {
  std::ifstream In(Path);
  SymbolTable Syms;
  TraceStream TS(In, Syms);
  TraceSanitizer San(SanitizeMode::Lenient);
  std::vector<Backend *> Delivery = Set.all();
  for (Backend *B : Delivery)
    B->beginAnalysis(Syms);
  EventsOut = 0;
  Event E;
  std::vector<Event> Clean;
  while (TS.next(E)) {
    Clean.clear();
    if (!San.push(E, Clean, TS.lineNo()))
      return false;
    for (const Event &C : Clean) {
      ++EventsOut;
      for (Backend *B : Delivery)
        B->onEvent(C);
    }
  }
  if (TS.failed())
    return false;
  Clean.clear();
  San.finish(Clean);
  for (const Event &C : Clean) {
    ++EventsOut;
    for (Backend *B : Delivery)
      B->onEvent(C);
  }
  for (Backend *B : Delivery)
    B->endAnalysis();
  return true;
}

bool runParallel(const std::string &Path, unsigned Workers, BackendSet &Set,
                 uint64_t &EventsOut) {
  std::ifstream In(Path);
  SymbolTable Syms;
  TraceSanitizer San(SanitizeMode::Lenient);
  std::vector<Backend *> Delivery = Set.all();
  for (Backend *B : Delivery)
    B->beginAnalysis(Syms);
  ParallelOptions Opts;
  Opts.Workers = Workers;
  ParallelPipeline Pipe(In, Syms, San, nullptr, Delivery, std::move(Opts));
  PipelineResult R = Pipe.run();
  EventsOut = R.EventsSeen;
  return R.Err == PipelineError::None;
}

/// Identical verdict + warning list, back-end by back-end.
bool sameOutput(BackendSet &A, BackendSet &B, std::string &WhyOut) {
  std::vector<Backend *> As = A.all(), Bs = B.all();
  for (size_t I = 0; I < As.size(); ++I) {
    if (As[I]->sawViolation() != Bs[I]->sawViolation()) {
      WhyOut = std::string(As[I]->name()) + ": verdict differs";
      return false;
    }
    const std::vector<Warning> &AW = As[I]->warnings();
    const std::vector<Warning> &BW = Bs[I]->warnings();
    if (AW.size() != BW.size()) {
      WhyOut = std::string(As[I]->name()) + ": warning count " +
               std::to_string(AW.size()) + " vs " +
               std::to_string(BW.size());
      return false;
    }
    for (size_t J = 0; J < AW.size(); ++J)
      if (AW[J].Message != BW[J].Message) {
        WhyOut = std::string(As[I]->name()) + ": warning " +
                 std::to_string(J) + " differs";
        return false;
      }
  }
  return true;
}

double minSeconds(int Reps, const std::function<void()> &Fn) {
  double Best = 1e30;
  for (int R = 0; R < Reps; ++R) {
    Stopwatch Timer;
    Fn();
    double S = Timer.seconds();
    if (S < Best)
      Best = S;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Events = 2000000, Threads = 8, Workers = 0, Reps = 3, Seed = 1;
  bool Check = false, Keep = false, ExplicitGate = false;
  double MinSpeedup = 1.8;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto U64 = [&](size_t Prefix, uint64_t &Out) {
      char *End = nullptr;
      errno = 0;
      unsigned long long V = std::strtoull(Arg.c_str() + Prefix, &End, 10);
      if (errno != 0 || End == Arg.c_str() + Prefix || *End != '\0') {
        std::fprintf(stderr, "invalid value in '%s'\n", Arg.c_str());
        return false;
      }
      Out = V;
      return true;
    };
    if (Arg.rfind("--events=", 0) == 0) {
      if (!U64(9, Events))
        return 2;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      if (!U64(10, Threads))
        return 2;
    } else if (Arg.rfind("--workers=", 0) == 0) {
      if (!U64(10, Workers))
        return 2;
    } else if (Arg.rfind("--reps=", 0) == 0) {
      if (!U64(7, Reps))
        return 2;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      if (!U64(7, Seed))
        return 2;
    } else if (Arg.rfind("--min-speedup=", 0) == 0) {
      char *End = nullptr;
      MinSpeedup = std::strtod(Arg.c_str() + 14, &End);
      if (End == Arg.c_str() + 14 || *End != '\0' || MinSpeedup <= 0) {
        std::fprintf(stderr, "invalid value in '%s'\n", Arg.c_str());
        return 2;
      }
      ExplicitGate = true;
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg == "--keep") {
      Keep = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Threads == 0 || Reps == 0) {
    std::fprintf(stderr, "--threads and --reps must be nonzero\n");
    return 2;
  }

  std::string Path = "/tmp/parallel_pipeline_bench.trace";
  uint64_t Written = writeBigTrace(Path, Events,
                                   static_cast<uint32_t>(Threads), Seed);
  std::printf("trace: %llu events, %llu thread(s); pipeline workers: %s; "
              "host threads: %u\n",
              static_cast<unsigned long long>(Written),
              static_cast<unsigned long long>(Threads),
              Workers ? std::to_string(Workers).c_str() : "one per back-end",
              std::thread::hardware_concurrency());

  // Identity first (and always): one sequential + one parallel run, full
  // verdict and warning-list comparison. These runs double as warm-up.
  BackendSet SeqSet, ParSet;
  uint64_t SeqEvents = 0, ParEvents = 0;
  if (!runSequential(Path, SeqSet, SeqEvents)) {
    std::fprintf(stderr, "sequential run failed on the generated trace\n");
    return 1;
  }
  if (!runParallel(Path, static_cast<unsigned>(Workers), ParSet, ParEvents)) {
    std::fprintf(stderr, "parallel run failed on the generated trace\n");
    return 1;
  }
  std::string Why;
  if (SeqEvents != ParEvents) {
    std::fprintf(stderr, "FAIL: event counts differ (sequential %llu, "
                 "parallel %llu)\n",
                 static_cast<unsigned long long>(SeqEvents),
                 static_cast<unsigned long long>(ParEvents));
    return 1;
  }
  if (!sameOutput(SeqSet, ParSet, Why)) {
    std::fprintf(stderr, "FAIL: parallel output differs: %s\n", Why.c_str());
    return 1;
  }
  std::printf("identity: verdicts and warning lists identical across %zu "
              "back-ends\n", SeqSet.all().size());

  double SeqSec = minSeconds(static_cast<int>(Reps), [&] {
    BackendSet S;
    uint64_t N;
    runSequential(Path, S, N);
  });
  double ParSec = minSeconds(static_cast<int>(Reps), [&] {
    BackendSet S;
    uint64_t N;
    runParallel(Path, static_cast<unsigned>(Workers), S, N);
  });
  double Speedup = ParSec > 0 ? SeqSec / ParSec : 0;
  std::printf("sequential: %.3fs (%.0f ev/s)\n"
              "parallel:   %.3fs (%.0f ev/s)\n"
              "speedup:    %.2fx\n",
              SeqSec, SeqEvents / SeqSec, ParSec, ParEvents / ParSec,
              Speedup);

  if (!Keep)
    std::remove(Path.c_str());

  if (!Check)
    return 0;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw < 4 && !ExplicitGate) {
    // A host without parallelism cannot demonstrate parallel speedup; the
    // identity half of the gate already ran above.
    std::printf("speedup gate skipped: %u hardware thread(s)\n", Hw);
    return 0;
  }
  if (Speedup < MinSpeedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.2fx gate\n",
                 Speedup, MinSpeedup);
    return 1;
  }
  std::printf("speedup gate passed (>= %.2fx)\n", MinSpeedup);
  return 0;
}
