//===- bench/table1_slowdowns.cpp - Table 1 (left): analysis slowdowns ----===//
//
// Regenerates the left half of the paper's Table 1: per benchmark, the
// program size, the uninstrumented ("base") running time, and the slowdown
// when instrumented under each back-end — Empty (instrumentation overhead
// only), Eraser, Atomizer, and Velodrome (optimized, Figure 4 semantics).
//
// Methodology mirrors the paper's: the base run is the same program with
// event emission compiled out; each instrumented run feeds the back-end the
// full event stream. Threads run preemptively (FreeRunning mode) and events
// are linearized into the back-end, as RoadRunner does. Numbers are minima
// over repetitions.
//
// Expected shape (the claim under test): Empty < Eraser <= Atomizer, with
// Velodrome competitive with (typically within ~1.5x of) the Atomizer —
// completeness costs little (paper: compute-bound averages 9.3x / 10.4x /
// 12.7x for Eraser / Atomizer / Velodrome).
//
// Usage: table1_slowdowns [scale] [reps]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/EmptyBackend.h"
#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "eraser/Eraser.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace velo;
using namespace velo::bench;

namespace {

double timedRun(const Workload &W, RuntimeOptions::Mode Mode,
                Backend *B, int Reps) {
  return minSeconds(Reps, [&] {
    RuntimeOptions Opts;
    Opts.ExecMode = Mode;
    Opts.SchedulerSeed = 1;
    Opts.WorkloadSeed = 1;
    std::vector<Backend *> Backends;
    if (B)
      Backends.push_back(B);
    Runtime RT(Opts, Backends);
    // Paper methodology: methods already identified as non-atomic are not
    // checked (their blocks run non-transactionally), which increases
    // Velodrome's relative load — "many small transactions rather than a
    // few monolithic ones".
    for (const std::string &M : W.nonAtomicMethods())
      RT.excludeMethod(M);
    W.run(RT);
  });
}

} // namespace

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 40;
  int Reps = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("Table 1 (left): base time and per-back-end slowdowns\n");
  std::printf("(scale=%d, reps=%d; slowdown = instrumented / base)\n\n",
              Scale, Reps);

  TablePrinter Table({"Program", "Size(lines)", "Base(ms)", "Events",
                      "Empty", "Eraser", "Atomizer", "Velodrome"});

  double GeoEmpty = 0, GeoEraser = 0, GeoAtomizer = 0, GeoVelodrome = 0;
  int Counted = 0;

  for (const auto &W : makeAllWorkloads()) {
    W->Scale = Scale;

    double Base =
        timedRun(*W, RuntimeOptions::Mode::Baseline, nullptr, Reps);

    EmptyBackend Empty;
    double TEmpty =
        timedRun(*W, RuntimeOptions::Mode::FreeRunning, &Empty, Reps);
    Eraser Race;
    double TEraser =
        timedRun(*W, RuntimeOptions::Mode::FreeRunning, &Race, Reps);
    Atomizer Atom;
    double TAtomizer =
        timedRun(*W, RuntimeOptions::Mode::FreeRunning, &Atom, Reps);
    Velodrome Velo;
    double TVelodrome =
        timedRun(*W, RuntimeOptions::Mode::FreeRunning, &Velo, Reps);

    if (Base <= 0)
      Base = 1e-9;
    Table.startRow();
    Table.cell(std::string(W->name()));
    Table.cell(static_cast<uint64_t>(sourceLines(*W)));
    Table.cell(Base * 1e3, 2);
    Table.cell(TablePrinter::withCommas(Empty.eventCount()));
    Table.cell(TEmpty / Base, 1);
    Table.cell(TEraser / Base, 1);
    Table.cell(TAtomizer / Base, 1);
    Table.cell(TVelodrome / Base, 1);

    GeoEmpty += TEmpty / Base;
    GeoEraser += TEraser / Base;
    GeoAtomizer += TAtomizer / Base;
    GeoVelodrome += TVelodrome / Base;
    ++Counted;
  }

  std::printf("%s\n", Table.str().c_str());
  std::printf("arithmetic-mean slowdowns: Empty %.1f  Eraser %.1f  "
              "Atomizer %.1f  Velodrome %.1f\n",
              GeoEmpty / Counted, GeoEraser / Counted, GeoAtomizer / Counted,
              GeoVelodrome / Counted);
  std::printf("\npaper (compute-bound averages): Eraser 9.3x, Atomizer "
              "10.4x, Velodrome 12.7x —\nthe claim is the *ordering* and "
              "the small completeness premium, not absolutes.\n");
  return 0;
}
