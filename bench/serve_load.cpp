//===- bench/serve_load.cpp - Concurrent-session daemon throughput --------===//
//
// Load generator and gate for velodrome-serve: N concurrent client
// sessions stream generated traces at an in-process daemon (or an external
// one via --socket) and the aggregate events/sec is measured. The hard
// invariant always runs first: every session's verdict must be
// byte-identical to a directly-fed Session (the same pipeline
// velodrome-check builds) — the daemon adds concurrency, never semantics.
//
//   serve_load [--sessions=N] [--events=N] [--threads=N] [--frame-events=N]
//              [--workers=N] [--backend=SEL] [--seed=N] [--reps=N]
//              [--socket=PATH] [--check] [--min-eps=X]
//
// --check gates: identity (always), then aggregate events/sec >= --min-eps
// (default 50000) when the host has at least 4 hardware threads; on
// smaller hosts the throughput gate is skipped unless --min-eps was given
// explicitly. Exit: 0 pass, 1 gate failed, 2 usage/setup error.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "events/TraceGen.h"
#include "support/Stopwatch.h"
#include "support/Syscalls.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace velo;
using namespace velo::serve;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: serve_load [options]\n"
      "  --sessions=N      concurrent sessions (default 8)\n"
      "  --events=N        approximate events per session (default 100000)\n"
      "  --threads=N       threads in each generated trace (default 4)\n"
      "  --frame-events=N  events per wire frame (default 4096)\n"
      "  --workers=N       daemon worker threads (default 4)\n"
      "  --backend=SEL     session backend selection (default velodrome;\n"
      "                    'all' includes the quadratic reference checker)\n"
      "  --seed=N          generator seed (default 1)\n"
      "  --reps=N          timing repetitions, best-of (default 3)\n"
      "  --socket=PATH     drive an external daemon instead of in-process\n"
      "  --connect-timeout-ms=N  retry refused connects with backoff for\n"
      "                    up to N ms (default 0 = one attempt); useful\n"
      "                    with --socket while the daemon is still coming up\n"
      "  --check           gate: identity, then events/sec >= --min-eps\n"
      "  --min-eps=X       aggregate events/sec gate (default 50000;\n"
      "                    explicit value forces the gate on small hosts)\n");
}

bool parseU64(const char *S, uint64_t &Out) {
  if (*S == '\0' || *S == '-' || *S == '+')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (errno != 0 || End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// Reference verdict: the trace through one directly-fed Session.
bool referenceVerdict(const Trace &T, const std::string &Name,
                      const std::string &BackendSel, std::string &Report,
                      int &Exit, std::string &Err) {
  Session S;
  SessionConfig C;
  C.Name = Name;
  C.BackendSel = BackendSel;
  if (!S.configure(C, Err))
    return false;
  S.symbols().Vars.syncFrom(T.symbols().Vars);
  S.symbols().Locks.syncFrom(T.symbols().Locks);
  S.symbols().Labels.syncFrom(T.symbols().Labels);
  for (const Event &E : T)
    if (!S.feed(E, Err))
      return false;
  if (!S.finish(Err))
    return false;
  Report = S.report();
  Exit = S.exitCode();
  return true;
}

struct SessionOutcome {
  bool Ok = false;
  std::string Error;
  VerdictMsg Verdict;
};

} // namespace

int main(int argc, char **argv) {
  sys::ignoreSigpipe();
  uint64_t Sessions = 8, EventsPer = 100000, Threads = 4, FrameEvents = 4096;
  uint64_t Workers = 4, Seed = 1, Reps = 3, ConnectTimeoutMs = 0;
  std::string BackendSel = "velodrome", ExternalSocket;
  bool Check = false, ExplicitGate = false;
  double MinEps = 50000;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    uint64_t *U64Target = nullptr;
    size_t U64Prefix = 0;
    if (Arg.rfind("--sessions=", 0) == 0) {
      U64Target = &Sessions;
      U64Prefix = 11;
    } else if (Arg.rfind("--events=", 0) == 0) {
      U64Target = &EventsPer;
      U64Prefix = 9;
    } else if (Arg.rfind("--threads=", 0) == 0) {
      U64Target = &Threads;
      U64Prefix = 10;
    } else if (Arg.rfind("--frame-events=", 0) == 0) {
      U64Target = &FrameEvents;
      U64Prefix = 15;
    } else if (Arg.rfind("--workers=", 0) == 0) {
      U64Target = &Workers;
      U64Prefix = 10;
    } else if (Arg.rfind("--seed=", 0) == 0) {
      U64Target = &Seed;
      U64Prefix = 7;
    } else if (Arg.rfind("--reps=", 0) == 0) {
      U64Target = &Reps;
      U64Prefix = 7;
    } else if (Arg.rfind("--backend=", 0) == 0) {
      BackendSel = Arg.substr(10);
    } else if (Arg.rfind("--socket=", 0) == 0) {
      ExternalSocket = Arg.substr(9);
    } else if (Arg.rfind("--connect-timeout-ms=", 0) == 0) {
      U64Target = &ConnectTimeoutMs;
      U64Prefix = 21;
    } else if (Arg == "--check") {
      Check = true;
    } else if (Arg.rfind("--min-eps=", 0) == 0) {
      char *End = nullptr;
      MinEps = std::strtod(Arg.c_str() + 10, &End);
      if (End == Arg.c_str() + 10 || *End != '\0' || MinEps <= 0) {
        std::fprintf(stderr, "invalid value in '%s'\n", Arg.c_str());
        return 2;
      }
      ExplicitGate = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      usage();
      return 2;
    }
    if (U64Target && !parseU64(Arg.c_str() + U64Prefix, *U64Target)) {
      std::fprintf(stderr, "invalid value in '%s'\n", Arg.c_str());
      return 2;
    }
  }
  if (Sessions == 0 || EventsPer == 0 || Threads == 0 || Reps == 0 ||
      FrameEvents == 0) {
    std::fprintf(stderr, "counts must be nonzero\n");
    return 2;
  }

  // Per-session workloads and reference verdicts (identity baseline).
  std::vector<Trace> Traces;
  std::vector<std::string> WantReport(Sessions);
  std::vector<int> WantExit(Sessions);
  uint64_t TotalEvents = 0;
  for (uint64_t I = 0; I < Sessions; ++I) {
    TraceGenOptions Opts;
    Opts.Threads = static_cast<uint32_t>(Threads);
    Opts.Vars = static_cast<uint32_t>(Threads) * 16;
    Opts.Locks = static_cast<uint32_t>(Threads);
    Opts.Steps = static_cast<size_t>(EventsPer);
    Opts.GuardedAccessPct = 60;
    Traces.push_back(generateRandomTrace(Seed * 7919 + I + 1, Opts));
    TotalEvents += Traces.back().size();
    std::string Err;
    if (!referenceVerdict(Traces[I], "load-" + std::to_string(I), BackendSel,
                          WantReport[I], WantExit[I], Err)) {
      std::fprintf(stderr, "reference run %llu failed: %s\n",
                   static_cast<unsigned long long>(I), Err.c_str());
      return 2;
    }
  }

  // Daemon: in-process unless --socket pointed us at a live one.
  std::unique_ptr<Server> Srv;
  std::thread Runner;
  std::string Socket = ExternalSocket;
  if (Socket.empty()) {
    Socket = "/tmp/velo-serve-load-" + std::to_string(::getpid()) + ".sock";
    ServerOptions SO;
    SO.SocketPath = Socket;
    SO.Workers = static_cast<unsigned>(Workers);
    SO.MaxSessions = Sessions + 4;
    SO.Verbose = false;
    Srv = std::make_unique<Server>(SO);
    std::string Err;
    if (!Srv->start(Err)) {
      std::fprintf(stderr, "daemon start failed: %s\n", Err.c_str());
      return 2;
    }
    Runner = std::thread([&] { Srv->run(); });
  }

  // One measured repetition: all sessions concurrently, wall-clocked
  // end-to-end (connect to verdict).
  auto runOnce = [&](const std::string &Tag,
                     std::vector<SessionOutcome> &Out) -> double {
    Out.assign(Sessions, SessionOutcome());
    Stopwatch Timer;
    std::vector<std::thread> Drivers;
    for (uint64_t I = 0; I < Sessions; ++I)
      Drivers.emplace_back([&, I] {
        SessionOutcome &R = Out[I];
        Client Cl;
        Cl.ConnectTimeoutMillis = static_cast<unsigned>(ConnectTimeoutMs);
        std::string Err;
        if (!Cl.connectUnix(Socket, Err)) {
          R.Error = Err;
          return;
        }
        HelloMsg H;
        H.Name = "load-" + std::to_string(I) + Tag;
        H.BackendSel = BackendSel;
        HelloOkMsg Ok;
        if (!Cl.hello(H, Ok, Err)) {
          R.Error = Err;
          return;
        }
        RunResult RR;
        if (!Cl.run(Traces[I].symbols(),
                    std::vector<Event>(Traces[I].begin(), Traces[I].end()),
                    Ok, static_cast<size_t>(FrameEvents), 0, RR, Err)) {
          R.Error = Err;
          return;
        }
        if (!RR.GotVerdict) {
          R.Error = RR.GotNak ? "NAK: " + RR.Nak.Reason : "no verdict";
          return;
        }
        R.Ok = true;
        R.Verdict = RR.Verdict;
      });
    for (auto &Th : Drivers)
      Th.join();
    return Timer.seconds();
  };

  // Identity first (and always); this run doubles as warm-up.
  std::vector<SessionOutcome> Out;
  runOnce("", Out);
  for (uint64_t I = 0; I < Sessions; ++I) {
    if (!Out[I].Ok) {
      std::fprintf(stderr, "FAIL: session %llu: %s\n",
                   static_cast<unsigned long long>(I), Out[I].Error.c_str());
      if (Srv)
        Srv->requestStop();
      if (Runner.joinable())
        Runner.join();
      return 1;
    }
    if (Out[I].Verdict.Report != WantReport[I] ||
        Out[I].Verdict.ExitCode != WantExit[I]) {
      std::fprintf(stderr,
                   "FAIL: session %llu verdict differs from the directly-fed "
                   "pipeline\n--- daemon ---\n%s--- direct ---\n%s",
                   static_cast<unsigned long long>(I),
                   Out[I].Verdict.Report.c_str(), WantReport[I].c_str());
      if (Srv)
        Srv->requestStop();
      if (Runner.joinable())
        Runner.join();
      return 1;
    }
  }
  std::printf("identity: %llu session verdicts byte-identical to the "
              "directly-fed pipeline\n",
              static_cast<unsigned long long>(Sessions));

  double Best = 1e30;
  for (uint64_t R = 0; R < Reps; ++R) {
    double Sec = runOnce("-r" + std::to_string(R), Out);
    bool AllOk = true;
    for (auto &O : Out)
      AllOk = AllOk && O.Ok;
    if (!AllOk) {
      std::fprintf(stderr, "FAIL: a timed repetition lost a session\n");
      if (Srv)
        Srv->requestStop();
      if (Runner.joinable())
        Runner.join();
      return 1;
    }
    if (Sec < Best)
      Best = Sec;
  }
  double Eps = TotalEvents / Best;
  std::printf("load: %llu sessions x ~%llu events, %llu daemon workers, "
              "frame %llu events\nbest: %.3fs  aggregate: %.0f events/sec\n",
              static_cast<unsigned long long>(Sessions),
              static_cast<unsigned long long>(EventsPer),
              static_cast<unsigned long long>(Workers),
              static_cast<unsigned long long>(FrameEvents), Best, Eps);

  if (Srv) {
    Srv->requestStop();
    if (Runner.joinable())
      Runner.join();
    ::unlink(Socket.c_str());
  }

  if (!Check)
    return 0;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw < 4 && !ExplicitGate) {
    std::printf("throughput gate skipped: %u hardware thread(s) (identity "
                "gate already passed)\n",
                Hw);
    return 0;
  }
  if (Eps < MinEps) {
    std::fprintf(stderr, "FAIL: %.0f events/sec < gate %.0f\n", Eps, MinEps);
    return 1;
  }
  std::printf("gate: %.0f events/sec >= %.0f\n", Eps, MinEps);
  return 0;
}
