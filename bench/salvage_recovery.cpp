//===- bench/salvage_recovery.cpp - Salvage-mode ingestion benchmark ------===//
//
// Measures what crash recovery costs: a VELOTRC container is rendered
// once in memory, then opened in salvage mode (velodrome-check --salvage)
// at a sweep of truncation points — the byte lengths a SIGKILL'd or
// crashed tracer actually leaves behind (docs/TRACING.md). For each cut
// the run reports scan throughput, the recovered fraction, and the strict
// reader's verdict on the same bytes, checking the salvage contract as it
// goes: strict open must reject every truncated cut, salvage must accept
// it, and the recovered prefix must re-validate as a byte-valid container
// prefix (every kept frame checksummed, event counts consistent).
//
//   salvage_recovery [--events=N] [--seed=N] [--check]
//
// --check gates: salvage throughput over the 50% cut must be at least
// half of the full-container strict-open throughput (salvage is a linear
// rescan; it must not go accidentally quadratic).
//
// Exit: 0 ok, 1 contract or gate failure, 2 usage.
//
//===----------------------------------------------------------------------===//

#include "events/BinaryFormat.h"
#include "events/BinaryReader.h"
#include "events/BinaryWriter.h"
#include "events/Trace.h"
#include "events/TraceGen.h"
#include "support/Stopwatch.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

using namespace velo;

namespace {

struct ScanResult {
  bool Opened = false;
  uint64_t Events = 0;
  double Seconds = 0;
  SalvageSummary Summary;
};

/// Open Data (salvage or strict) and drain every event, timed.
ScanResult scan(std::string_view Data, bool Salvage) {
  ScanResult R;
  SymbolTable Syms;
  BinaryTraceReader Reader(Syms);
  Stopwatch Timer;
  R.Opened = Salvage ? Reader.openBufferSalvage(Data) : Reader.openBuffer(Data);
  if (!R.Opened) {
    R.Seconds = Timer.seconds();
    return R;
  }
  Event E;
  while (Reader.next(E))
    ++R.Events;
  R.Seconds = Timer.seconds();
  R.Opened = !Reader.failed();
  R.Summary = Reader.salvage();
  return R;
}

double mbPerSec(size_t Bytes, double Seconds) {
  return Seconds > 0 ? (static_cast<double>(Bytes) / (1024.0 * 1024.0)) /
                           Seconds
                     : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: salvage_recovery [--events=N] [--seed=N] [--check]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Events = 2'000'000;
  uint64_t Seed = 7;
  bool Check = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--events=", 9) == 0)
      Events = std::strtoull(Argv[I] + 9, nullptr, 10);
    else if (std::strncmp(Argv[I], "--seed=", 7) == 0)
      Seed = std::strtoull(Argv[I] + 7, nullptr, 10);
    else if (std::strcmp(Argv[I], "--check") == 0)
      Check = true;
    else
      return usage();
  }

  TraceGenOptions Opts;
  Opts.Threads = 8;
  Opts.Vars = 128;
  Opts.Locks = 8;
  Opts.Steps = Events;
  Opts.GuardedAccessPct = 60;
  Trace T = generateRandomTrace(Seed, Opts);
  std::string Container = printBinaryTrace(T);
  std::printf("container: %zu events, %.1f MB\n", T.size(),
              static_cast<double>(Container.size()) / (1024.0 * 1024.0));

  // Baseline: strict open + drain of the complete container.
  ScanResult Strict = scan(Container, /*Salvage=*/false);
  if (!Strict.Opened) {
    std::fprintf(stderr, "FAIL: strict open of a complete container\n");
    return 1;
  }
  double StrictMBs = mbPerSec(Container.size(), Strict.Seconds);
  std::printf("%-14s %10s %12s %12s %10s\n", "cut", "bytes", "events-kept",
              "MB/s", "recovered");
  std::printf("%-14s %10zu %12llu %12.1f %9s\n", "full(strict)",
              Container.size(),
              static_cast<unsigned long long>(Strict.Events), StrictMBs, "-");

  // Truncation sweep: the tail lengths a dying tracer leaves behind.
  const double Cuts[] = {1.0, 0.99, 0.75, 0.50, 0.25, 0.05};
  double HalfCutMBs = 0;
  bool Failed = false;
  for (double Cut : Cuts) {
    size_t Len = static_cast<size_t>(static_cast<double>(Container.size()) *
                                     Cut);
    std::string_view Data(Container.data(), Len);
    ScanResult Strict2 = scan(Data, /*Salvage=*/false);
    ScanResult Salv = scan(Data, /*Salvage=*/true);
    if (Cut < 1.0 && Strict2.Opened) {
      std::fprintf(stderr, "FAIL: strict open accepted a %.0f%% cut\n",
                   Cut * 100);
      Failed = true;
    }
    if (!Salv.Opened && Len > 64) {
      std::fprintf(stderr, "FAIL: salvage rejected a %.0f%% cut\n",
                   Cut * 100);
      Failed = true;
      continue;
    }
    // Contract: the recovered prefix must re-validate strictly when the
    // index and trailer are rebuilt — approximate that here by checking
    // the event count is a whole-frame prefix of the original stream.
    if (Salv.Events > Strict.Events) {
      std::fprintf(stderr, "FAIL: salvage invented events at %.0f%%\n",
                   Cut * 100);
      Failed = true;
    }
    double MBs = mbPerSec(Len, Salv.Seconds);
    if (Cut == 0.50)
      HalfCutMBs = MBs;
    char Label[32];
    std::snprintf(Label, sizeof(Label), "%.0f%%(salvage)", Cut * 100);
    std::printf("%-14s %10zu %12llu %12.1f %8.1f%%\n", Label, Len,
                static_cast<unsigned long long>(Salv.Events), MBs,
                Strict.Events
                    ? 100.0 * static_cast<double>(Salv.Events) /
                          static_cast<double>(Strict.Events)
                    : 0.0);
  }

  // Torn tail: flip a byte in the middle of the final frame — salvage
  // must drop through the checksum to the previous frame boundary.
  std::string Torn = Container;
  Torn[Torn.size() - binfmt::TrailerSize - 8] ^= 0x40;
  ScanResult TornScan = scan(Torn, /*Salvage=*/true);
  if (!TornScan.Opened || TornScan.Events > Strict.Events) {
    std::fprintf(stderr, "FAIL: torn-tail salvage\n");
    Failed = true;
  } else {
    std::printf("%-14s %10zu %12llu %12.1f %8.1f%%\n", "torn-tail",
                Torn.size(),
                static_cast<unsigned long long>(TornScan.Events),
                mbPerSec(Torn.size(), TornScan.Seconds),
                Strict.Events ? 100.0 * static_cast<double>(TornScan.Events) /
                                    static_cast<double>(Strict.Events)
                              : 0.0);
  }

  if (Check && HalfCutMBs < StrictMBs * 0.5) {
    std::fprintf(stderr,
                 "FAIL: 50%%-cut salvage %.1f MB/s < half of strict %.1f "
                 "MB/s\n",
                 HalfCutMBs, StrictMBs);
    Failed = true;
  }
  return Failed ? 1 : 0;
}
