//===- bench/table2_warnings.cpp - Table 2: warning counts ----------------===//
//
// Regenerates the paper's Table 2: per benchmark, distinct warnings over
// five runs for the Atomizer and for Velodrome, classified against each
// workload's ground-truth inventory of non-atomic methods:
//
//   Atomizer Non-Serial   flagged methods that are genuinely non-atomic
//   Atomizer False Alarms flagged methods that are in fact atomic
//   Velodrome Non-Serial  methods blamed by resolved increasing cycles
//   Velodrome False Alarms  must be zero (soundness + completeness)
//   Missed                genuinely non-atomic methods the Atomizer flagged
//                         but Velodrome never witnessed (no generalization)
//
// Both tools replay the *identical* recorded trace per (benchmark, seed),
// exactly as RoadRunner feeds one event stream to every back-end.
//
// Expected shape (paper): Atomizer 154 non-serial + 84 false alarms;
// Velodrome 133 non-serial, 0 false alarms, 21 missed (~85% recall).
//
// Usage: table2_warnings [runs] [scale]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/TraceRecorder.h"
#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

using namespace velo;
using namespace velo::bench;

int main(int argc, char **argv) {
  int Runs = argc > 1 ? std::atoi(argv[1]) : 5;
  int Scale = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("Table 2: distinct warnings over %d runs per benchmark "
              "(all methods assumed atomic)\n\n",
              Runs);

  TablePrinter Table({"Program", "Atom:NonSer", "Atom:FalseAlarm",
                      "Velo:NonSer", "Velo:FalseAlarm", "Missed"});

  int TotAtomTrue = 0, TotAtomFalse = 0, TotVeloTrue = 0, TotVeloFalse = 0,
      TotMissed = 0, TotUnresolved = 0;

  for (const auto &W : makeAllWorkloads()) {
    W->Scale = Scale;
    std::set<std::string> Truth = truthSet(*W);

    std::set<std::string> AtomFlagged, VeloFlagged;
    int Unresolved = 0;

    for (int Run = 0; Run < Runs; ++Run) {
      uint64_t Seed = static_cast<uint64_t>(Run) * 101 + 7;
      TraceRecorder Rec;
      {
        RuntimeOptions Opts;
        Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
        Opts.SchedulerSeed = Seed;
        Opts.WorkloadSeed = Seed + 1;
        Runtime RT(Opts, {&Rec});
        W->run(RT);
      }
      Trace T = Rec.takeTrace();

      Atomizer Atom;
      VelodromeOptions VOpts;
      VOpts.EmitDot = false;
      Velodrome Velo(VOpts);
      replayAll(T, {&Atom, &Velo});

      for (const Warning &Warn : Atom.warnings())
        if (Warn.Method != NoLabel)
          AtomFlagged.insert(T.symbols().labelName(Warn.Method));
      for (const AtomicityViolation &V : Velo.violations()) {
        if (V.BlameResolved && V.Method != NoLabel)
          VeloFlagged.insert(T.symbols().labelName(V.Method));
        else
          ++Unresolved;
      }
    }

    int AtomTrue = 0, AtomFalse = 0, VeloTrue = 0, VeloFalse = 0;
    for (const std::string &M : AtomFlagged)
      Truth.count(M) ? ++AtomTrue : ++AtomFalse;
    for (const std::string &M : VeloFlagged)
      Truth.count(M) ? ++VeloTrue : ++VeloFalse;
    int Missed = 0;
    for (const std::string &M : AtomFlagged)
      if (Truth.count(M) && !VeloFlagged.count(M))
        ++Missed;

    Table.startRow();
    Table.cell(std::string(W->name()));
    Table.cell(static_cast<int64_t>(AtomTrue));
    Table.cell(static_cast<int64_t>(AtomFalse));
    Table.cell(static_cast<int64_t>(VeloTrue));
    Table.cell(static_cast<int64_t>(VeloFalse));
    Table.cell(static_cast<int64_t>(Missed));

    TotAtomTrue += AtomTrue;
    TotAtomFalse += AtomFalse;
    TotVeloTrue += VeloTrue;
    TotVeloFalse += VeloFalse;
    TotMissed += Missed;
    TotUnresolved += Unresolved;
  }

  Table.startRow();
  Table.cell(std::string("Total"));
  Table.cell(static_cast<int64_t>(TotAtomTrue));
  Table.cell(static_cast<int64_t>(TotAtomFalse));
  Table.cell(static_cast<int64_t>(TotVeloTrue));
  Table.cell(static_cast<int64_t>(TotVeloFalse));
  Table.cell(static_cast<int64_t>(TotMissed));

  std::printf("%s\n", Table.str().c_str());
  std::printf("velodrome warnings with unresolved blame (reported but not "
              "method-attributed): %d\n",
              TotUnresolved);
  double FalseRate =
      TotAtomTrue + TotAtomFalse
          ? 100.0 * TotAtomFalse / (TotAtomTrue + TotAtomFalse)
          : 0.0;
  double Recall = TotAtomTrue
                      ? 100.0 * (TotAtomTrue - TotMissed) / TotAtomTrue
                      : 100.0;
  std::printf("\nAtomizer false-alarm rate: %.0f%%   Velodrome false "
              "alarms: %d   Velodrome recall vs Atomizer-true: %.0f%%\n",
              FalseRate, TotVeloFalse, Recall);
  std::printf("paper's shape: ~40%% Atomizer false alarms, zero Velodrome "
              "false alarms, ~85%% recall.\n");
  return TotVeloFalse == 0 ? 0 : 1;
}
