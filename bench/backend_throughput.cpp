//===- bench/backend_throughput.cpp - Per-back-end event throughput -------===//
//
// google-benchmark microbenchmarks: events/second for every analysis
// back-end over pre-recorded synthetic streams, swept across stream shapes
// (thread count, guarded fraction, transaction density). This is the
// microscopic version of Table 1's slowdown columns: the per-event cost
// ordering Empty < Eraser <= HB <= Atomizer <= Velodrome should hold, with
// Velodrome within a small factor of the incomplete tools.
//
//===----------------------------------------------------------------------===//

#include "analysis/EmptyBackend.h"
#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "eraser/Eraser.h"
#include "events/TraceGen.h"
#include "hbrace/HbRaceDetector.h"

#include <benchmark/benchmark.h>

#include <memory>

using namespace velo;

namespace {

/// Shared pre-generated stream per (threads, guardedPct) shape.
const Trace &streamFor(int Threads, int GuardedPct) {
  struct Key {
    int Threads, GuardedPct;
    bool operator<(const Key &O) const {
      return Threads != O.Threads ? Threads < O.Threads
                                  : GuardedPct < O.GuardedPct;
    }
  };
  static std::map<Key, std::unique_ptr<Trace>> Cache;
  auto &Slot = Cache[{Threads, GuardedPct}];
  if (!Slot) {
    TraceGenOptions Opts;
    Opts.Threads = static_cast<uint32_t>(Threads);
    Opts.Vars = 16;
    Opts.Locks = 8;
    Opts.Steps = 200000;
    Opts.GuardedAccessPct = static_cast<unsigned>(GuardedPct);
    Slot = std::make_unique<Trace>(
        generateRandomTrace(0x5eedULL + Threads * 131 + GuardedPct, Opts));
  }
  return *Slot;
}

template <typename BackendT> void runBackend(benchmark::State &State) {
  const Trace &T =
      streamFor(static_cast<int>(State.range(0)),
                static_cast<int>(State.range(1)));
  for (auto _ : State) {
    BackendT B;
    replay(T, B);
    benchmark::DoNotOptimize(B.warnings().size());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
  State.counters["events"] = static_cast<double>(T.size());
}

void velodromeNoMerge(benchmark::State &State) {
  const Trace &T =
      streamFor(static_cast<int>(State.range(0)),
                static_cast<int>(State.range(1)));
  for (auto _ : State) {
    VelodromeOptions Opts;
    Opts.UseMerge = false;
    Opts.EmitDot = false;
    Velodrome B(Opts);
    replay(T, B);
    benchmark::DoNotOptimize(B.sawViolation());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(T.size()));
}

// Shapes: {threads, guarded%}. Guarded 85% approximates well-synchronized
// programs; 0% maximizes conflict-edge traffic.
#define SHAPES                                                                \
  ->Args({2, 85})->Args({4, 85})->Args({8, 85})->Args({4, 0})->Args({4, 40})

BENCHMARK(runBackend<EmptyBackend>)->Name("Empty") SHAPES;
BENCHMARK(runBackend<Eraser>)->Name("Eraser") SHAPES;
BENCHMARK(runBackend<HbRaceDetector>)->Name("HB") SHAPES;
BENCHMARK(runBackend<Atomizer>)->Name("Atomizer") SHAPES;
BENCHMARK(runBackend<Velodrome>)->Name("Velodrome") SHAPES;
BENCHMARK(velodromeNoMerge)->Name("VelodromeNoMerge") SHAPES;

} // namespace

BENCHMARK_MAIN();
