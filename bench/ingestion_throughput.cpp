//===- bench/ingestion_throughput.cpp - Streaming-ingestion benchmark -----===//
//
// Measures the hardened ingestion path end to end: write an N-event trace to
// disk, then stream it (TraceStream -> TraceSanitizer -> AeroDrome) the way
// velodrome-check's default path does, reporting events/sec and peak RSS.
// The point of the RSS column is the acceptance criterion of the ingestion
// work: memory must stay flat in trace length on the streaming path (the
// whole-file Trace object is only built for --witness).
//
//   ingestion_throughput [--events=N] [--seed=N] [--keep]
//
//===----------------------------------------------------------------------===//

#include "aero/AeroDrome.h"
#include "events/TraceGen.h"
#include "events/TraceSanitizer.h"
#include "events/TraceStream.h"
#include "events/TraceText.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace velo;

namespace {

long maxRssKb() {
  struct rusage Usage;
  getrusage(RUSAGE_SELF, &Usage);
  return Usage.ru_maxrss;
}

/// Write an approximately NumEvents-long well-formed trace to Path in
/// bounded memory (generated and flushed in chunks).
uint64_t writeBigTrace(const std::string &Path, uint64_t NumEvents,
                       uint64_t Seed) {
  std::ofstream Out(Path);
  TraceGenOptions Opts;
  Opts.Threads = 8;
  Opts.Vars = 64;
  Opts.Locks = 8;
  Opts.Steps = 20000;
  Opts.GuardedAccessPct = 60;
  uint64_t Written = 0;
  for (uint64_t Chunk = 0; Written < NumEvents; ++Chunk) {
    Trace T = generateRandomTrace(Seed * 7919 + Chunk, Opts);
    Out << printTrace(T);
    Written += T.size();
  }
  return Written;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t NumEvents = 10'000'000, Seed = 1;
  bool Keep = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--events=", 0) == 0)
      NumEvents = std::strtoull(Arg.c_str() + 9, nullptr, 10);
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg == "--keep")
      Keep = true;
    else {
      std::fprintf(stderr,
                   "usage: ingestion_throughput [--events=N] [--seed=N] "
                   "[--keep]\n");
      return 2;
    }
  }

  std::string Path = "/tmp/velo_ingestion_bench.trace";
  std::printf("generating ~%llu events to %s...\n",
              static_cast<unsigned long long>(NumEvents), Path.c_str());
  uint64_t Written = writeBigTrace(Path, NumEvents, Seed);
  long RssAfterGen = maxRssKb();

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot reopen %s\n", Path.c_str());
    return 2;
  }
  SymbolTable Syms;
  TraceStream Stream(In, Syms);
  TraceSanitizer Sanitizer(SanitizeMode::Lenient);
  AeroDrome Aero;
  Aero.beginAnalysis(Syms);

  auto Start = std::chrono::steady_clock::now();
  std::vector<Event> Batch;
  Event E;
  uint64_t Delivered = 0;
  while (Stream.next(E)) {
    Batch.clear();
    Sanitizer.push(E, Batch, Stream.lineNo());
    for (const Event &Out : Batch) {
      Aero.onEvent(Out);
      ++Delivered;
    }
  }
  Batch.clear();
  Sanitizer.finish(Batch);
  for (const Event &Out : Batch) {
    Aero.onEvent(Out);
    ++Delivered;
  }
  Aero.endAnalysis();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  if (Stream.failed()) {
    std::fprintf(stderr, "stream failed: %s\n", Stream.error().c_str());
    return 1;
  }
  std::printf("events written   %llu\n",
              static_cast<unsigned long long>(Written));
  std::printf("events delivered %llu\n",
              static_cast<unsigned long long>(Delivered));
  std::printf("ingest time      %.2f s (%.2f Mev/s)\n", Secs,
              Delivered / Secs / 1e6);
  std::printf("violation        %s\n", Aero.sawViolation() ? "yes" : "no");
  std::printf("peak RSS         %ld KB (after generation: %ld KB)\n",
              maxRssKb(), RssAfterGen);
  if (!Keep)
    std::remove(Path.c_str());
  return 0;
}
