//===- bench/ingestion_throughput.cpp - Streaming-ingestion benchmark -----===//
//
// Measures the hardened ingestion path end to end: write an N-event trace to
// disk, then stream it (TraceStream -> TraceSanitizer -> AeroDrome) the way
// velodrome-check's default path does, reporting events/sec and peak RSS.
// The point of the RSS column is the acceptance criterion of the ingestion
// work: memory must stay flat in trace length on the streaming path (the
// whole-file Trace object is only built for --witness).
//
// The run also converts the trace to the VELOTRC binary container
// (docs/INGESTION.md) and compares parse-only throughput — text tokenizer
// vs mmap'd binary reader over the same event stream. --check turns that
// comparison into a gate: binary ingest must be at least --min-mult times
// (default 4x) faster than text, the acceptance bar for the binary wire
// format.
//
//   ingestion_throughput [--events=N] [--seed=N] [--keep] [--check]
//                        [--min-mult=X]
//
// Exit: 0 ok, 1 measurement failed or the --check gate missed, 2 usage.
//
//===----------------------------------------------------------------------===//

#include "aero/AeroDrome.h"
#include "events/BinaryReader.h"
#include "events/BinaryWriter.h"
#include "events/TraceGen.h"
#include "events/TraceSanitizer.h"
#include "events/TraceStream.h"
#include "events/TraceText.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace velo;

namespace {

long maxRssKb() {
  struct rusage Usage;
  getrusage(RUSAGE_SELF, &Usage);
  return Usage.ru_maxrss;
}

/// Write an approximately NumEvents-long well-formed trace to Path in
/// bounded memory (generated and flushed in chunks).
uint64_t writeBigTrace(const std::string &Path, uint64_t NumEvents,
                       uint64_t Seed) {
  std::ofstream Out(Path);
  TraceGenOptions Opts;
  Opts.Threads = 8;
  Opts.Vars = 64;
  Opts.Locks = 8;
  Opts.Steps = 20000;
  Opts.GuardedAccessPct = 60;
  uint64_t Written = 0;
  for (uint64_t Chunk = 0; Written < NumEvents; ++Chunk) {
    Trace T = generateRandomTrace(Seed * 7919 + Chunk, Opts);
    Out << printTrace(T);
    Written += T.size();
  }
  return Written;
}

/// Stream the text trace through the binary writer (constant memory).
bool convertToBinary(const std::string &TextPath, const std::string &BinPath,
                     uint64_t &EventsOut) {
  std::ifstream In(TextPath);
  if (!In)
    return false;
  SymbolTable Syms;
  TraceStream Stream(In, Syms);
  std::ofstream Out(BinPath, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  BinaryTraceWriter Writer(Out, Syms);
  Event E;
  while (Stream.next(E))
    Writer.add(E);
  if (Stream.failed() || !Writer.finish())
    return false;
  EventsOut = Writer.eventCount();
  return true;
}

/// Parse-only drain of the text format: tokenizer + interner, no
/// sanitizer, no back-end. Returns events/sec (0 on failure).
double drainTextMevs(const std::string &Path, uint64_t &EventsOut) {
  std::ifstream In(Path);
  if (!In)
    return 0;
  SymbolTable Syms;
  TraceStream Stream(In, Syms);
  Event E;
  uint64_t N = 0;
  auto Start = std::chrono::steady_clock::now();
  while (Stream.next(E))
    ++N;
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  if (Stream.failed())
    return 0;
  EventsOut = N;
  return N / Secs;
}

/// Parse-only drain of the mmap'd binary container. Returns events/sec.
double drainBinaryMevs(const std::string &Path, uint64_t &EventsOut) {
  SymbolTable Syms;
  BinaryTraceReader Reader(Syms);
  std::string Err;
  if (Reader.open(Path, Err) != TraceReadStatus::Ok)
    return 0;
  Event E;
  uint64_t N = 0;
  auto Start = std::chrono::steady_clock::now();
  while (Reader.next(E))
    ++N;
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  if (Reader.failed())
    return 0;
  EventsOut = N;
  return N / Secs;
}

long fileSizeKb(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary | std::ios::ate);
  return In ? static_cast<long>(In.tellg()) / 1024 : 0;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t NumEvents = 10'000'000, Seed = 1;
  bool Keep = false, Check = false;
  double MinMult = 4.0;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--events=", 0) == 0)
      NumEvents = std::strtoull(Arg.c_str() + 9, nullptr, 10);
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg == "--keep")
      Keep = true;
    else if (Arg == "--check")
      Check = true;
    else if (Arg.rfind("--min-mult=", 0) == 0)
      MinMult = std::strtod(Arg.c_str() + 11, nullptr);
    else {
      std::fprintf(stderr,
                   "usage: ingestion_throughput [--events=N] [--seed=N] "
                   "[--keep] [--check] [--min-mult=X]\n");
      return 2;
    }
  }

  std::string Path = "/tmp/velo_ingestion_bench.trace";
  std::string BinPath = "/tmp/velo_ingestion_bench.vtrc";
  std::printf("generating ~%llu events to %s...\n",
              static_cast<unsigned long long>(NumEvents), Path.c_str());
  uint64_t Written = writeBigTrace(Path, NumEvents, Seed);
  long RssAfterGen = maxRssKb();

  uint64_t BinEvents = 0;
  if (!convertToBinary(Path, BinPath, BinEvents) || BinEvents != Written) {
    std::fprintf(stderr, "binary conversion failed\n");
    return 1;
  }

  // Parse-only comparison over identical event streams. Text runs first;
  // both files are already warm in the page cache from generation and
  // conversion, so the order does not favor either side.
  uint64_t TextParsed = 0, BinParsed = 0;
  double TextEvs = drainTextMevs(Path, TextParsed);
  double BinEvs = drainBinaryMevs(BinPath, BinParsed);
  if (TextEvs == 0 || BinEvs == 0 || TextParsed != Written ||
      BinParsed != Written) {
    std::fprintf(stderr, "parse-only drain failed or event counts differ\n");
    return 1;
  }
  double Mult = BinEvs / TextEvs;

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot reopen %s\n", Path.c_str());
    return 2;
  }
  SymbolTable Syms;
  TraceStream Stream(In, Syms);
  TraceSanitizer Sanitizer(SanitizeMode::Lenient);
  AeroDrome Aero;
  Aero.beginAnalysis(Syms);

  auto Start = std::chrono::steady_clock::now();
  std::vector<Event> Batch;
  Event E;
  uint64_t Delivered = 0;
  while (Stream.next(E)) {
    Batch.clear();
    Sanitizer.push(E, Batch, Stream.lineNo());
    for (const Event &Out : Batch) {
      Aero.onEvent(Out);
      ++Delivered;
    }
  }
  Batch.clear();
  Sanitizer.finish(Batch);
  for (const Event &Out : Batch) {
    Aero.onEvent(Out);
    ++Delivered;
  }
  Aero.endAnalysis();
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  if (Stream.failed()) {
    std::fprintf(stderr, "stream failed: %s\n", Stream.error().c_str());
    return 1;
  }
  std::printf("events written   %llu\n",
              static_cast<unsigned long long>(Written));
  std::printf("events delivered %llu\n",
              static_cast<unsigned long long>(Delivered));
  std::printf("file size        text %ld KB, binary %ld KB\n",
              fileSizeKb(Path), fileSizeKb(BinPath));
  std::printf("parse-only text  %.2f Mev/s\n", TextEvs / 1e6);
  std::printf("parse-only vtrc  %.2f Mev/s (%.2fx text)\n", BinEvs / 1e6,
              Mult);
  std::printf("ingest time      %.2f s (%.2f Mev/s end-to-end)\n", Secs,
              Delivered / Secs / 1e6);
  std::printf("violation        %s\n", Aero.sawViolation() ? "yes" : "no");
  std::printf("peak RSS         %ld KB (after generation: %ld KB)\n",
              maxRssKb(), RssAfterGen);
  if (!Keep) {
    std::remove(Path.c_str());
    std::remove(BinPath.c_str());
  }
  if (Check) {
    if (Mult < MinMult) {
      std::fprintf(stderr,
                   "CHECK FAILED: binary ingest is %.2fx text "
                   "(required >= %.2fx)\n",
                   Mult, MinMult);
      return 1;
    }
    std::printf("CHECK OK: binary ingest %.2fx text (>= %.2fx)\n", Mult,
                MinMult);
  }
  return 0;
}
