//===- bench/BenchUtil.h - Shared benchmark-harness helpers -----*- C++ -*-===//
//
// Helpers shared by the table-reproduction binaries: source line counting
// (the "Size (lines)" column of Table 1), wall-clock repetition, and the
// classification of warnings against a workload's ground truth.
//
//===----------------------------------------------------------------------===//

#ifndef VELO_BENCH_BENCHUTIL_H
#define VELO_BENCH_BENCHUTIL_H

#include "support/Stopwatch.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <fstream>
#include <functional>
#include <set>
#include <string>

namespace velo {
namespace bench {

/// Count the lines of a workload's implementing source file (best effort;
/// returns 0 if unreadable — e.g. when running from an installed binary).
inline size_t sourceLines(const Workload &W) {
  std::ifstream In(W.sourceFile());
  if (!In)
    return 0;
  size_t Lines = 0;
  std::string Buf;
  while (std::getline(In, Buf))
    ++Lines;
  return Lines;
}

/// Minimum wall-clock seconds over Reps repetitions of Fn.
inline double minSeconds(int Reps, const std::function<void()> &Fn) {
  double Best = 1e30;
  for (int R = 0; R < Reps; ++R) {
    Stopwatch Timer;
    Fn();
    Best = std::min(Best, Timer.seconds());
  }
  return Best;
}

/// Ground-truth method set of a workload.
inline std::set<std::string> truthSet(const Workload &W) {
  std::set<std::string> Out;
  for (const std::string &M : W.nonAtomicMethods())
    Out.insert(M);
  return Out;
}

} // namespace bench
} // namespace velo

#endif // VELO_BENCH_BENCHUTIL_H
