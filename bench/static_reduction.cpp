//===- bench/static_reduction.cpp - Static reduction speedup benchmark ----===//
//
// Measures the end-to-end payoff of the static pass pipeline
// (docs/STATIC.md) on a thread-local-heavy workload, the population the
// escape pass targets: each thread runs transactions over its own
// accumulator variables and only occasionally touches guarded shared
// state. Times a full Velodrome replay of the raw trace against the whole
// reduced pipeline — classify + plan + reduce + replay — so the classifier
// sweep is charged to the reduction, and reports per-pass dropped-event
// counts and the speedup.
//
//   static_reduction [--events=N] [--threads=N] [--reps=N] [--check]
//
// --check exits 1 unless the verdicts match and the end-to-end speedup is
// at least 2x (the acceptance bar for the reduction work); CI runs it on
// every PR.
//
//===----------------------------------------------------------------------===//

#include "core/Velodrome.h"
#include "staticpass/StaticPipeline.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace velo;

namespace {

/// A thread-local-heavy trace: Threads threads hammering per-thread
/// accumulators (reads and writes) outside any atomic block — the way an
/// access-instrumented program looks when only the shared-state methods
/// are annotated — with every 16th round entering a transaction that
/// updates one lock-guarded shared counter. Roughly NumEvents events
/// total.
Trace makeWorkload(uint64_t NumEvents, uint32_t Threads) {
  Trace T;
  Label Work = T.symbols().Labels.intern("Worker.flush");
  LockId Mu = T.symbols().Locks.intern("mu");
  VarId Shared = T.symbols().Vars.intern("total");
  std::vector<VarId> Local;
  for (uint32_t I = 0; I < Threads; ++I)
    Local.push_back(T.symbols().Vars.intern("acc" + std::to_string(I)));

  // Rounds are round-robined over threads so runs of thread-local work
  // interleave the way a real schedule does.
  uint64_t Round = 0;
  while (T.size() < NumEvents) {
    for (uint32_t Th = 0; Th < Threads; ++Th) {
      T.push(Event::write(Th, Local[Th]));
      for (int I = 0; I < 14; ++I)
        T.push(Event::read(Th, Local[Th]));
      if (Round % 16 == 0) {
        T.push(Event::begin(Th, Work));
        T.push(Event::acquire(Th, Mu));
        T.push(Event::read(Th, Shared));
        T.push(Event::write(Th, Shared));
        T.push(Event::release(Th, Mu));
        T.push(Event::end(Th));
      }
    }
    ++Round;
  }
  return T;
}

double replaySeconds(const Trace &T, int Reps, bool &ViolationOut) {
  double Best = 1e30;
  for (int R = 0; R < Reps; ++R) {
    Velodrome V;
    Stopwatch Timer;
    replay(T, V);
    double S = Timer.seconds();
    if (S < Best)
      Best = S;
    ViolationOut = V.sawViolation();
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t NumEvents = 2'000'000;
  uint32_t Threads = 4;
  int Reps = 3;
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--events=", 0) == 0)
      NumEvents = std::strtoull(Arg.c_str() + 9, nullptr, 10);
    else if (Arg.rfind("--threads=", 0) == 0)
      Threads = static_cast<uint32_t>(
          std::strtoul(Arg.c_str() + 10, nullptr, 10));
    else if (Arg.rfind("--reps=", 0) == 0)
      Reps = std::atoi(Arg.c_str() + 7);
    else if (Arg == "--check")
      Check = true;
    else {
      std::fprintf(stderr, "usage: static_reduction [--events=N] "
                           "[--threads=N] [--reps=N] [--check]\n");
      return 2;
    }
  }
  if (Threads == 0 || Reps <= 0) {
    std::fprintf(stderr, "error: --threads and --reps must be positive\n");
    return 2;
  }

  Trace T = makeWorkload(NumEvents, Threads);
  std::printf("workload: %zu events, %u threads (thread-local heavy)\n",
              T.size(), Threads);

  bool FullViolation = false;
  double FullSec = replaySeconds(T, Reps, FullViolation);

  // End-to-end reduced pipeline, all phases inside the timed region.
  double ReducedSec = 1e30;
  double PlanSec = 0, FilterSec = 0, ReplaySec = 0;
  bool ReducedViolation = false;
  PassStats Stats;
  for (int R = 0; R < Reps; ++R) {
    Stopwatch Timer;
    ReductionPlan Plan = planTrace(T, PassMask::all());
    double AfterPlan = Timer.seconds();
    PassStats S;
    Trace Reduced = reduceTrace(T, Plan, &S);
    double AfterFilter = Timer.seconds();
    Velodrome V;
    replay(Reduced, V);
    double Sec = Timer.seconds();
    if (Sec < ReducedSec) {
      ReducedSec = Sec;
      PlanSec = AfterPlan;
      FilterSec = AfterFilter - AfterPlan;
      ReplaySec = Sec - AfterFilter;
    }
    ReducedViolation = V.sawViolation();
    Stats = S;
  }

  double Speedup = FullSec > 0 ? FullSec / ReducedSec : 0;
  std::printf("full replay:     %8.3f s  (%s)\n", FullSec,
              FullViolation ? "violation" : "serializable");
  std::printf("reduced pipeline:%8.3f s  (%s)  [classify %.3f + reduce "
              "%.3f + replay %.3f]\n",
              ReducedSec, ReducedViolation ? "violation" : "serializable",
              PlanSec, FilterSec, ReplaySec);
  std::printf("reduction: %s (%.1f%% dropped)\n", Stats.summary().c_str(),
              Stats.Input ? 100.0 * static_cast<double>(Stats.droppedTotal())
                                / static_cast<double>(Stats.Input)
                          : 0.0);
  std::printf("speedup: %.2fx\n", Speedup);

  if (Check) {
    if (FullViolation != ReducedViolation) {
      std::fprintf(stderr, "FAIL: reduction changed the verdict\n");
      return 1;
    }
    if (Speedup < 2.0) {
      std::fprintf(stderr, "FAIL: end-to-end speedup %.2fx below the 2x "
                           "acceptance bar\n",
                   Speedup);
      return 1;
    }
    std::printf("check passed: verdict preserved, speedup >= 2x\n");
  }
  return 0;
}
