//===- bench/table1_graph_stats.cpp - Table 1 (right): node statistics ----===//
//
// Regenerates the right half of the paper's Table 1: per benchmark, the
// number of happens-before graph nodes Velodrome allocates and the maximum
// number simultaneously live, with the merge optimization disabled
// ("Without Merge": the naive [INS OUTSIDE] rule, one node per unary
// operation, GC still on) and enabled ("With Merge": the Figure 4 rules).
//
// The two claims under test (Section 6):
//   1. garbage collection keeps at most a few dozen nodes live even when
//      hundreds of thousands are allocated (up to four orders of magnitude
//      reduction), and
//   2. merging cuts allocations themselves by up to several orders of
//      magnitude.
//
// Usage: table1_graph_stats [scale] [seed]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/TraceRecorder.h"
#include "core/Velodrome.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace velo;
using namespace velo::bench;

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 40;
  uint64_t Seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  std::printf("Table 1 (right): happens-before graph node statistics\n");
  std::printf("(scale=%d, seed=%llu; identical recorded trace replayed "
              "into both configurations)\n\n",
              Scale, static_cast<unsigned long long>(Seed));

  TablePrinter Table({"Program", "Events", "NoMerge:Alloc", "NoMerge:MaxAlive",
                      "Merge:Alloc", "Merge:MaxAlive"});

  for (const auto &W : makeAllWorkloads()) {
    W->Scale = Scale;

    // Record once so both configurations see the identical interleaving.
    TraceRecorder Rec;
    {
      RuntimeOptions Opts;
      Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
      Opts.SchedulerSeed = Seed;
      Opts.WorkloadSeed = Seed;
      Runtime RT(Opts, {&Rec});
      // Paper methodology: known-non-atomic methods are unchecked, so most
      // of their operations run outside any transaction.
      for (const std::string &M : W->nonAtomicMethods())
        RT.excludeMethod(M);
      W->run(RT);
    }
    Trace T = Rec.takeTrace();

    VelodromeOptions NoMergeOpts;
    NoMergeOpts.UseMerge = false;
    NoMergeOpts.EmitDot = false;
    Velodrome NoMerge(NoMergeOpts);
    replay(T, NoMerge);

    VelodromeOptions MergeOpts;
    MergeOpts.EmitDot = false;
    Velodrome Merge(MergeOpts);
    replay(T, Merge);

    Table.startRow();
    Table.cell(std::string(W->name()));
    Table.cell(TablePrinter::withCommas(T.size()));
    Table.cell(TablePrinter::withCommas(NoMerge.graph().nodesAllocated()));
    Table.cell(NoMerge.graph().maxNodesAlive());
    Table.cell(TablePrinter::withCommas(Merge.graph().nodesAllocated()));
    Table.cell(Merge.graph().maxNodesAlive());
  }

  std::printf("%s\n", Table.str().c_str());
  std::printf("paper's shape: tsp allocates >1,000,000 nodes without merge "
              "but keeps <=8 alive;\nwith merge, several benchmarks "
              "allocate orders of magnitude fewer nodes.\n");
  return 0;
}
