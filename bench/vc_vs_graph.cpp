//===- bench/vc_vs_graph.cpp - Vector-clock vs graph-checker throughput ---===//
//
// Replay throughput of the two atomicity-checker implementations on
// identical recorded traces: EmptyBackend (event-dispatch floor), the
// AeroDrome vector-clock back-end, and Velodrome's happens-before graph.
// Traces come from the benchmark workloads so the event mix (transaction
// sizes, lock density, sharing pattern) is realistic rather than synthetic.
//
// Expected shape: Empty >> AeroDrome >= Velodrome in events/sec — the
// vector-clock algorithm does O(#threads) work per event with no graph
// traversal, while Velodrome pays for node management and cycle checks.
// Both must report the same verdict on every trace (the differential suite
// enforces this; the column here is a visible cross-check).
//
// Usage: vc_vs_graph [scale] [reps]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "aero/AeroDrome.h"
#include "analysis/EmptyBackend.h"
#include "analysis/TraceRecorder.h"
#include "core/Velodrome.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace velo;
using namespace velo::bench;

namespace {

/// Record one deterministic execution of workload Name at Scale.
Trace recordTrace(const char *Name, int Scale) {
  std::unique_ptr<Workload> W = makeWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'\n", Name);
    std::exit(1);
  }
  W->Scale = Scale;
  RuntimeOptions Opts;
  Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
  Opts.SchedulerSeed = 1;
  Opts.WorkloadSeed = 8;
  TraceRecorder Rec;
  Runtime RT(Opts, {&Rec});
  W->run(RT);
  return Rec.takeTrace();
}

/// Minimum-over-reps replay rate of B on T, in events per second.
double replayRate(const Trace &T, Backend &B, int Reps) {
  double Secs = minSeconds(Reps, [&] {
    B.resetReports();
    replay(T, B);
  });
  return Secs > 0 ? static_cast<double>(T.size()) / Secs : 0;
}

} // namespace

int main(int argc, char **argv) {
  int Scale = argc > 1 ? std::atoi(argv[1]) : 40;
  int Reps = argc > 2 ? std::atoi(argv[2]) : 5;

  std::printf("Replay throughput: vector-clock vs graph checker\n");
  std::printf("(scale=%d, reps=%d; rates are events/sec, minimum-time rep; "
              "speedup = AeroDrome / Velodrome)\n\n",
              Scale, Reps);

  TablePrinter Table({"Trace", "Events", "Empty/s", "Aero/s", "Velo/s",
                      "Speedup", "Verdicts"});

  for (const char *Name :
       {"multiset", "tsp", "philo", "elevator", "montecarlo"}) {
    Trace T = recordTrace(Name, Scale);

    EmptyBackend Empty;
    AeroDrome Aero;
    Velodrome Velo;
    double EmptyRate = replayRate(T, Empty, Reps);
    double AeroRate = replayRate(T, Aero, Reps);
    double VeloRate = replayRate(T, Velo, Reps);

    std::string Verdicts =
        std::string(Aero.sawViolation() ? "viol" : "ok") + "/" +
        (Velo.sawViolation() ? "viol" : "ok") +
        (Aero.sawViolation() != Velo.sawViolation() ? " MISMATCH" : "");

    Table.startRow();
    Table.cell(std::string(Name));
    Table.cell(static_cast<uint64_t>(T.size()));
    Table.cell(EmptyRate, 0);
    Table.cell(AeroRate, 0);
    Table.cell(VeloRate, 0);
    Table.cell(VeloRate > 0 ? AeroRate / VeloRate : 0, 2);
    Table.cell(Verdicts);
  }

  std::printf("%s\n", Table.str().c_str());
  return 0;
}
