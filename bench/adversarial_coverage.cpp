//===- bench/adversarial_coverage.cpp - Section 6 adversarial extras ------===//
//
// Regenerates the paper's second adversarial-scheduling observation:
// "Velodrome found the second non-serial method in raytracer, as well as
// one additional non-serial method in colt and several more in jigsaw"
// once the Atomizer-guided scheduler was enabled.
//
// Per benchmark we count the distinct ground-truth methods Velodrome
// witnesses across N seeds, with and without adversarial scheduling, and
// list the methods found *only* with guidance.
//
// Usage: adversarial_coverage [seeds] [scale]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

using namespace velo;
using namespace velo::bench;

namespace {

std::set<std::string> methodsFound(const Workload &W, int Seeds,
                                   bool Adversarial) {
  std::set<std::string> Found;
  for (int S = 0; S < Seeds; ++S) {
    RuntimeOptions Opts;
    Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
    Opts.SchedulerSeed = static_cast<uint64_t>(S) * 13 + 1;
    Opts.WorkloadSeed = static_cast<uint64_t>(S) * 17 + 3;
    Opts.Adversarial = Adversarial;
    Opts.AdversarialStall = 60;

    VelodromeOptions VOpts;
    VOpts.EmitDot = false;
    Velodrome Velo(VOpts);
    Atomizer Guide;
    Runtime RT(Opts, {&Guide, &Velo});
    if (Adversarial)
      RT.setGuide(&Guide);
    W.run(RT);
    for (const AtomicityViolation &V : Velo.violations())
      if (V.Method != NoLabel)
        Found.insert(RT.symbols().labelName(V.Method));
  }
  return Found;
}

} // namespace

int main(int argc, char **argv) {
  int Seeds = argc > 1 ? std::atoi(argv[1]) : 10;
  int Scale = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("Adversarial-scheduling coverage (Section 6): distinct "
              "ground-truth methods\nwitnessed by Velodrome over %d seeds\n\n",
              Seeds);

  TablePrinter Table({"Program", "Truth", "Plain", "Adversarial",
                      "Gained methods"});

  for (const char *Name : {"raytracer", "colt", "jigsaw"}) {
    std::unique_ptr<Workload> W = makeWorkload(Name);
    W->Scale = Scale;
    std::set<std::string> Truth = truthSet(*W);

    std::set<std::string> Plain = methodsFound(*W, Seeds, false);
    std::set<std::string> Adv = methodsFound(*W, Seeds, true);

    auto TrueHits = [&](const std::set<std::string> &Found) {
      size_t N = 0;
      for (const std::string &M : Found)
        N += Truth.count(M);
      return N;
    };

    std::string Gained;
    for (const std::string &M : Adv)
      if (Truth.count(M) && !Plain.count(M))
        Gained += (Gained.empty() ? "" : ", ") + M;

    Table.startRow();
    Table.cell(std::string(Name));
    Table.cell(static_cast<uint64_t>(Truth.size()));
    Table.cell(static_cast<uint64_t>(TrueHits(Plain)));
    Table.cell(static_cast<uint64_t>(TrueHits(Adv)));
    Table.cell(Gained.empty() ? "-" : Gained);
  }

  std::printf("%s\n", Table.str().c_str());
  std::printf("paper: guidance uncovered raytracer's second method, one "
              "more in colt, several in jigsaw.\n");
  return 0;
}
