//===- bench/scheduling_policies.cpp - Stall-policy exploration -----------===//
//
// Section 5 closes with: "We are exploring a number of other scheduling
// policies, such as pausing writes but not reads, allowing some threads to
// never pause, and so on." This bench carries out that exploration over the
// defect-injection corpus: per policy, the aggregate single-run detection
// rate of injected defects across the elevator and colt guard sites.
//
// Usage: scheduling_policies [trials] [scale]
//
//===----------------------------------------------------------------------===//

#include "atomizer/Atomizer.h"
#include "core/Velodrome.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <set>

using namespace velo;

namespace {

struct PolicyRow {
  const char *Name;
  bool Adversarial;
  StallPolicy Policy;
};

bool trialDetects(const std::string &Name, const std::string &Site,
                  uint64_t Seed, int Scale, const PolicyRow &P) {
  std::unique_ptr<Workload> W = makeWorkload(Name);
  std::set<std::string> BaseTruth;
  for (const std::string &M : W->nonAtomicMethods())
    BaseTruth.insert(M);
  W->Scale = Scale;
  W->DisabledGuards.insert(Site);

  RuntimeOptions Opts;
  Opts.ExecMode = RuntimeOptions::Mode::Deterministic;
  Opts.SchedulerSeed = Seed;
  Opts.WorkloadSeed = Seed * 11 + 3;
  Opts.Adversarial = P.Adversarial;
  Opts.Policy = P.Policy;

  Velodrome V;
  Atomizer Guide;
  std::vector<Backend *> Backends{&V};
  if (P.Adversarial)
    Backends.push_back(&Guide);
  Runtime RT(Opts, Backends);
  if (P.Adversarial)
    RT.setGuide(&Guide);
  W->run(RT);

  for (const AtomicityViolation &Violation : V.violations())
    if (Violation.Method != NoLabel &&
        !BaseTruth.count(RT.symbols().labelName(Violation.Method)))
      return true;
  return false;
}

} // namespace

int main(int argc, char **argv) {
  int Trials = argc > 1 ? std::atoi(argv[1]) : 15;
  int Scale = argc > 2 ? std::atoi(argv[2]) : 2;

  const PolicyRow Policies[] = {
      {"none (uniform)", false, StallPolicy::AllOps},
      {"stall all ops", true, StallPolicy::AllOps},
      {"stall writes only", true, StallPolicy::WritesOnly},
      {"stall reads only", true, StallPolicy::ReadsOnly},
      {"spare main thread", true, StallPolicy::SpareMainOps},
  };

  std::printf("Adversarial stall-policy exploration (Section 5's future "
              "work), %d trials per\ncorrupted variant over the injection "
              "corpus (elevator + colt guard sites)\n\n",
              Trials);

  TablePrinter Table({"Policy", "Detection rate"});
  for (const PolicyRow &P : Policies) {
    int Total = 0, Hits = 0;
    for (const char *Name : {"elevator", "colt"}) {
      std::unique_ptr<Workload> W = makeWorkload(Name);
      for (const std::string &Site : W->guardSites()) {
        for (int Trial = 0; Trial < Trials; ++Trial) {
          ++Total;
          Hits += trialDetects(Name, Site, static_cast<uint64_t>(Trial),
                               Scale, P);
        }
      }
    }
    Table.startRow();
    Table.cell(std::string(P.Name));
    Table.cell(TablePrinter::fixed(100.0 * Hits / Total, 0) + "%  (" +
               std::to_string(Hits) + "/" + std::to_string(Total) + ")");
  }

  std::printf("%s\n", Table.str().c_str());
  std::printf("expected shape: any stall policy beats uniform scheduling; "
              "stalling at *reads*\ntends to win for check-then-act defects "
              "(the window opens at the stale read),\nwhile write-only "
              "stalling misses them.\n");
  return 0;
}
