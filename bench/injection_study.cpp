//===- bench/injection_study.cpp - Section 6 defect-injection study -------===//
//
// Regenerates the paper's injection experiment: "we injected atomicity
// defects into two programs, elevator and colt, by systematically removing
// each synchronized statement that induced contention one at a time...
// Without scheduler adjustments, a single run by Velodrome found the
// inserted defect approximately 30% of the time. With scheduler
// adjustments, the success rate increased to approximately 70%."
//
// Each guard site is disabled one at a time; per corrupted variant we run
// Velodrome over several scheduler seeds, with and without Atomizer-guided
// adversarial scheduling, and count the runs in which the *injected* defect
// (a blamed method outside the uncorrupted ground truth) is witnessed.
//
// Usage: injection_study [trials] [scale]
//
//===----------------------------------------------------------------------===//

#include "injection/Injection.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace velo;

int main(int argc, char **argv) {
  InjectionConfig Cfg;
  Cfg.TrialsPerSite = argc > 1 ? std::atoi(argv[1]) : 20;
  Cfg.Scale = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("Defect-injection study (Section 6): per-run detection rate "
              "of an injected\nsynchronization defect, plain vs. "
              "Atomizer-guided adversarial scheduling\n(%d trials per "
              "corrupted variant, scale %d)\n\n",
              Cfg.TrialsPerSite, Cfg.Scale);

  TablePrinter Table(
      {"Program", "Removed guard", "Plain", "Adversarial"});

  int TotTrials = 0, TotPlain = 0, TotAdv = 0;
  for (const char *Name : {"elevator", "colt"}) {
    for (const InjectionOutcome &O : runInjectionStudy(Name, Cfg)) {
      Table.startRow();
      Table.cell(O.WorkloadName);
      Table.cell(O.Site);
      Table.cell(TablePrinter::fixed(100.0 * O.DetectedPlain / O.Trials, 0) +
                 "%");
      Table.cell(
          TablePrinter::fixed(100.0 * O.DetectedAdversarial / O.Trials, 0) +
          "%");
      TotTrials += O.Trials;
      TotPlain += O.DetectedPlain;
      TotAdv += O.DetectedAdversarial;
    }
  }

  std::printf("%s\n", Table.str().c_str());
  if (TotTrials) {
    std::printf("aggregate single-run detection: plain %.0f%%, adversarial "
                "%.0f%%\n",
                100.0 * TotPlain / TotTrials, 100.0 * TotAdv / TotTrials);
  }
  std::printf("paper: ~30%% plain -> ~70%% adversarial; the claim is the "
              "large coverage gain\nwith zero completeness loss (every "
              "detection is a real violation).\n");
  return 0;
}
