//===- bench/paper_examples.cpp - The paper's worked examples -------------===//
//
// Regenerates every worked example (trace diagram) in the paper and checks
// the documented verdict, as a self-verifying harness:
//
//   intro    the A => B' => C' => A cycle, blamed on A        (figure, p.1)
//   s2-rmw   interleaved read-modify-write: not serializable  (Section 2)
//   s2-flag  volatile-flag handoff: serializable              (Section 2)
//   s43-self two self-serializable txns, joint cycle          (Section 4.3)
//   s43-nest nested blocks: p and q refuted, r not            (Section 4.3)
//   s5-set   Set.add error graph                              (Section 5)
//
// Exits non-zero if any verdict deviates.
//
//===----------------------------------------------------------------------===//

#include "core/Velodrome.h"
#include "events/TraceBuilder.h"
#include "oracle/SerializabilityOracle.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace velo;

namespace {

struct Outcome {
  bool Pass;
  std::string Detail;
};

Outcome check(const Trace &T, bool ExpectSerializable,
              const std::string &ExpectBlame = "") {
  OracleResult Oracle = checkSerializable(T);
  Velodrome Velo;
  replay(T, Velo);

  if (Oracle.Serializable != ExpectSerializable)
    return {false, "oracle verdict unexpected"};
  if (Velo.sawViolation() != !ExpectSerializable)
    return {false, "velodrome verdict unexpected"};
  if (!ExpectBlame.empty()) {
    if (Velo.violations().empty())
      return {false, "no violation recorded"};
    const AtomicityViolation &V = Velo.violations()[0];
    if (!V.BlameResolved)
      return {false, "blame not resolved"};
    std::string Blamed = T.symbols().labelName(V.Method);
    if (Blamed != ExpectBlame)
      return {false, "blamed '" + Blamed + "', expected '" + ExpectBlame +
                         "'"};
  }
  std::string Detail = ExpectSerializable ? "serializable, no warning"
                                          : "violation detected";
  if (!ExpectBlame.empty())
    Detail += ", blamed " + ExpectBlame;
  return {true, Detail};
}

} // namespace

int main() {
  TablePrinter Table({"Example", "Expected", "Result", "Detail"});
  bool AllPass = true;

  auto Row = [&](const char *Name, const char *Expected, Outcome O) {
    Table.startRow();
    Table.cell(std::string(Name));
    Table.cell(std::string(Expected));
    Table.cell(std::string(O.Pass ? "PASS" : "FAIL"));
    Table.cell(O.Detail);
    AllPass = AllPass && O.Pass;
  };

  { // Introduction: three-thread cycle, blame on A.
    TraceBuilder B;
    B.acq(0, "m")
        .begin(2, "C").rd(2, "x").wr(2, "z").end(2)
        .begin(0, "A").rel(0, "m")
        .wr(1, "z")
        .begin(1, "B'").acq(1, "m").wr(1, "y").end(1)
        .begin(2, "C'").rd(2, "y").wr(2, "s").wr(2, "x").end(2)
        .rd(0, "x").end(0);
    Row("intro A=>B'=>C'=>A", "cycle, blame A", check(B.trace(), false, "A"));
  }

  { // Section 2: interleaved RMW.
    TraceBuilder B;
    B.begin(0, "increment").rd(0, "x").wr(1, "x").wr(0, "x").end(0);
    Row("s2 interleaved RMW", "cycle, blame increment",
        check(B.trace(), false, "increment"));
  }

  { // Section 2: volatile-flag handoff (serializable).
    TraceBuilder B;
    B.rd(1, "b")
        .begin(0, "inc0").rd(0, "x").wr(0, "x").wr(0, "b").end(0)
        .rd(1, "b")
        .begin(1, "inc1").rd(1, "x").wr(1, "x").wr(1, "b").end(1)
        .rd(0, "b");
    Row("s2 flag handoff", "serializable", check(B.trace(), true));
  }

  { // Section 4.3: both transactions self-serializable, joint cycle.
    TraceBuilder B;
    B.begin(0, "D'").begin(1, "E'")
        .wr(0, "x").wr(1, "y").rd(0, "y").rd(1, "x")
        .end(0).end(1);
    Trace T = B.take();
    Outcome O = check(T, false);
    if (O.Pass) {
      TxnIndex Index = buildTxnIndex(T);
      if (!isSelfSerializable(T, Index, 0) ||
          !isSelfSerializable(T, Index, 1))
        O = {false, "a transaction is unexpectedly pinned"};
      else
        O.Detail += "; both txns individually self-serializable";
    }
    Row("s4.3 joint cycle", "cycle, no pinned txn", O);
  }

  { // Section 4.3: nested blocks p, q refuted; r not.
    TraceBuilder B;
    B.begin(0, "p").begin(0, "q").rd(0, "x").begin(0, "r")
        .wr(1, "x")
        .wr(0, "x").end(0).end(0).end(0);
    Trace T = B.take();
    Outcome O = check(T, false, "p");
    if (O.Pass) {
      Velodrome V;
      replay(T, V);
      const AtomicityViolation &Violation = V.violations()[0];
      bool RefutedR = false;
      for (Label L : Violation.RefutedBlocks)
        if (T.symbols().labelName(L) == "r")
          RefutedR = true;
      if (Violation.RefutedBlocks.size() != 2 || RefutedR)
        O = {false, "refuted-block set is not exactly {p, q}"};
      else
        O.Detail += "; refuted {p, q}, spared r";
    }
    Row("s4.3 nested blame", "refute p,q; spare r", O);
  }

  { // Section 5: Set.add error graph.
    TraceBuilder B;
    B.begin(0, "Set.add").acq(0, "#2").rd(0, "#2.elems").rel(0, "#2");
    B.begin(1, "Set.add").acq(1, "#2").rd(1, "#2.elems").rel(1, "#2")
        .acq(1, "#2").wr(1, "#2.elems").rel(1, "#2").end(1);
    B.acq(0, "#2").wr(0, "#2.elems").rel(0, "#2").end(0);
    Trace T = B.take();
    Outcome O = check(T, false, "Set.add");
    if (O.Pass) {
      Velodrome V;
      replay(T, V);
      const std::string &Dot = V.warnings()[0].Dot;
      if (Dot.find("digraph") == std::string::npos ||
          Dot.find("style=dashed") == std::string::npos)
        O = {false, "dot error graph malformed"};
      else
        O.Detail += "; dot graph rendered";
    }
    Row("s5 Set.add graph", "cycle, blame Set.add, dot", O);
  }

  std::printf("Paper worked examples, re-checked end to end:\n\n%s\n",
              Table.str().c_str());
  return AllPass ? 0 : 1;
}
