//===- bench/exhaustive_micro.cpp - Exhaustive schedule-space results -----===//
//
// Schedule-complete verification of micro-programs (cf. the model-checking
// discussion in the paper's related work): enumerate every interleaving of
// each program with the systematic explorer and report how many schedules
// Velodrome flags. For correct programs the violating count must be zero —
// a statement about *all* schedules of the given input, not one trace.
//
// Also reports the fraction of schedules on which the violation is
// observable at all: the quantitative version of why single-run dynamic
// checking needs adversarial scheduling (Table: the buggy RMW is invisible
// on most interleavings).
//
// Usage: exhaustive_micro
//
//===----------------------------------------------------------------------===//

#include "rt/ScheduleExplorer.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace velo;

namespace {

/// Two increment threads over one counter; Guarded selects correct locking.
std::function<void(Runtime &)> counter(bool Guarded, int Rounds) {
  return [Guarded, Rounds](Runtime &RT) {
    SharedVar &X = RT.var("x");
    LockVar &Mu = RT.lock("mu");
    RT.run([&, Guarded, Rounds](MonitoredThread &T0) {
      auto Body = [&, Guarded, Rounds](MonitoredThread &T) {
        for (int I = 0; I < Rounds; ++I) {
          AtomicRegion A(T, "bump");
          if (Guarded)
            T.lockAcquire(Mu);
          T.write(X, T.read(X) + 1);
          if (Guarded)
            T.lockRelease(Mu);
        }
      };
      Tid W = T0.fork(Body);
      Body(T0);
      T0.join(W);
    });
  };
}

/// The Set.add check-then-act against a concurrent full add.
void setAdd(Runtime &RT) {
  SharedVar &Elems = RT.var("elems");
  LockVar &Mu = RT.lock("vec");
  RT.run([&](MonitoredThread &T0) {
    Tid W = T0.fork([&](MonitoredThread &T) {
      AtomicRegion A(T, "Set.add");
      T.lockAcquire(Mu);
      T.read(Elems);
      T.lockRelease(Mu);
      T.lockAcquire(Mu);
      T.write(Elems, 1);
      T.lockRelease(Mu);
    });
    {
      AtomicRegion A(T0, "Set.add");
      T0.lockAcquire(Mu);
      T0.read(Elems);
      T0.lockRelease(Mu);
      T0.lockAcquire(Mu);
      T0.write(Elems, 1);
      T0.lockRelease(Mu);
    }
    T0.join(W);
  });
}

/// The same, fixed: one critical section per add.
void setAddFixed(Runtime &RT) {
  SharedVar &Elems = RT.var("elems");
  LockVar &Mu = RT.lock("vec");
  RT.run([&](MonitoredThread &T0) {
    Tid W = T0.fork([&](MonitoredThread &T) {
      AtomicRegion A(T, "Set.add");
      T.lockAcquire(Mu);
      T.read(Elems);
      T.write(Elems, 1);
      T.lockRelease(Mu);
    });
    {
      AtomicRegion A(T0, "Set.add");
      T0.lockAcquire(Mu);
      T0.read(Elems);
      T0.write(Elems, 1);
      T0.lockRelease(Mu);
    }
    T0.join(W);
  });
}

/// Fork-ordered publication: serializable on every schedule.
void forkPublish(Runtime &RT) {
  SharedVar &Cfg = RT.var("cfg");
  RT.run([&](MonitoredThread &T0) {
    T0.write(Cfg, 42);
    Tid A = T0.fork([&](MonitoredThread &T) {
      AtomicRegion R(T, "reader");
      T.read(Cfg);
      T.read(Cfg);
    });
    Tid B = T0.fork([&](MonitoredThread &T) {
      AtomicRegion R(T, "reader");
      T.read(Cfg);
      T.read(Cfg);
    });
    T0.join(A);
    T0.join(B);
  });
}

} // namespace

int main() {
  struct Row {
    const char *Name;
    std::function<void(Runtime &)> Program;
    bool ExpectClean;
  } Programs[] = {
      {"racy counter (1 round)", counter(false, 1), false},
      {"racy counter (2 rounds)", counter(false, 2), false},
      {"locked counter (1 round)", counter(true, 1), true},
      {"locked counter (2 rounds)", counter(true, 2), true},
      {"Set.add check-then-act", setAdd, false},
      {"Set.add fixed", setAddFixed, true},
      {"fork-published config", forkPublish, true},
  };

  std::printf("Exhaustive schedule-space verification of micro-programs\n\n");
  TablePrinter Table({"Program", "Schedules", "Violating", "Rate",
                      "Verdict"});
  bool AllOk = true;
  for (Row &P : Programs) {
    ExplorationOptions Opts;
    Opts.MaxSchedules = 500000;
    ExplorationResult R = exploreSchedules(P.Program, Opts);
    bool Clean = R.ViolatingSchedules == 0;
    bool Ok = Clean == P.ExpectClean; // capped runs report a sampled verdict
    AllOk = AllOk && Ok;
    Table.startRow();
    Table.cell(std::string(P.Name));
    Table.cell(TablePrinter::withCommas(R.SchedulesExplored) +
               (R.Exhausted ? "" : "+"));
    Table.cell(TablePrinter::withCommas(R.ViolatingSchedules));
    Table.cell(TablePrinter::fixed(
                   R.SchedulesExplored
                       ? 100.0 * R.ViolatingSchedules / R.SchedulesExplored
                       : 0.0,
                   1) +
               "%");
    std::string Verdict =
        !Ok ? "UNEXPECTED"
            : (Clean ? (R.Exhausted ? "clean (all schedules)"
                                    : "clean (sampled)")
                     : "violations exist");
    Table.cell(Verdict);
  }
  std::printf("%s\n", Table.str().c_str());
  std::printf("a 'clean' verdict here quantifies over *every* interleaving "
              "of the program —\nthe exhaustive complement to Velodrome's "
              "per-trace guarantee; the violating\nfraction of the racy "
              "programs is why Section 5's adversarial scheduling "
              "matters.\n");
  return AllOk ? 0 : 1;
}
