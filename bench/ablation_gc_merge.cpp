//===- bench/ablation_gc_merge.cpp - GC / merge / ancestor-set ablation ---===//
//
// Ablation over the three scalability mechanisms DESIGN.md calls out:
//
//   1. Reference-counting GC: compare the optimized engine's live-node
//      high-water mark against the Figure 2 reference analysis, which
//      retains every transaction node (the paper's "four orders of
//      magnitude" claim).
//   2. Merge: allocations and wall-clock with UseMerge on vs. off on
//      unary-operation-heavy streams (Table 1's "dramatic impact on
//      running times").
//   3. Cost scaling: events/second of the optimized engine across stream
//      shapes, demonstrating near-constant per-event cost as trace length
//      grows (possible only because the graph stays tiny).
//
// Usage: ablation_gc_merge [events]
//
//===----------------------------------------------------------------------===//

#include "core/BasicVelodrome.h"
#include "core/Velodrome.h"
#include "events/TraceGen.h"
#include "support/Stopwatch.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace velo;

namespace {

Trace makeStream(size_t Steps, unsigned GuardedPct, unsigned BeginWeight,
                 uint64_t Seed) {
  TraceGenOptions Opts;
  Opts.Threads = 4;
  Opts.Vars = 8;
  Opts.Locks = 4;
  Opts.Steps = Steps;
  Opts.GuardedAccessPct = GuardedPct;
  Opts.WeightBegin = BeginWeight;
  Opts.WeightEnd = BeginWeight + 2;
  return generateRandomTrace(Seed, Opts);
}

} // namespace

int main(int argc, char **argv) {
  size_t Events = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;

  std::printf("Ablation: GC, merge, and ancestor-set mechanisms "
              "(~%zu-event synthetic streams)\n\n",
              Events);

  // --- 1. GC: optimized engine vs. the retain-everything Figure 2 one ---
  {
    // Smaller stream: the reference analysis is O(n) memory and O(n^2)ish
    // time by design.
    Trace T = makeStream(60000, 60, 14, 11);
    VelodromeOptions VOpts;
    VOpts.EmitDot = false;
    Velodrome Opt(VOpts);
    replay(T, Opt);
    BasicVelodrome Ref;
    replay(T, Ref);

    TablePrinter Table({"Engine", "Nodes allocated", "Max alive"});
    Table.startRow();
    Table.cell(std::string("Figure 2 (no GC)"));
    Table.cell(TablePrinter::withCommas(Ref.nodesAllocated()));
    Table.cell(TablePrinter::withCommas(Ref.nodesAllocated()));
    Table.startRow();
    Table.cell(std::string("Optimized (+GC, +merge)"));
    Table.cell(TablePrinter::withCommas(Opt.graph().nodesAllocated()));
    Table.cell(TablePrinter::withCommas(Opt.graph().maxNodesAlive()));
    std::printf("1. garbage collection (%zu events):\n%s\n", T.size(),
                Table.str().c_str());
  }

  // --- 2. Merge on/off over unary-heavy vs. transaction-heavy streams ---
  {
    TablePrinter Table({"Stream", "Merge", "Alloc", "MaxAlive", "Mevt/s"});
    struct Shape {
      const char *Name;
      unsigned BeginWeight;
      unsigned GuardedPct;
    } Shapes[] = {{"unary-heavy (no blocks)", 0, 0},
                  {"mixed", 10, 40},
                  {"transaction-heavy", 30, 70}};
    for (const Shape &S : Shapes) {
      Trace T = makeStream(Events, S.GuardedPct, S.BeginWeight, 23);
      for (bool UseMerge : {false, true}) {
        VelodromeOptions VOpts;
        VOpts.UseMerge = UseMerge;
        VOpts.EmitDot = false;
        Velodrome V(VOpts);
        Stopwatch Timer;
        replay(T, V);
        double Secs = Timer.seconds();
        Table.startRow();
        Table.cell(std::string(S.Name));
        Table.cell(std::string(UseMerge ? "on" : "off"));
        Table.cell(TablePrinter::withCommas(V.graph().nodesAllocated()));
        Table.cell(V.graph().maxNodesAlive());
        Table.cell(T.size() / Secs / 1e6, 2);
      }
    }
    std::printf("2. merge ablation (%zu-step streams):\n%s\n", Events,
                Table.str().c_str());
  }

  // --- 3. Per-event cost vs. stream length (flat iff the graph is tiny) --
  {
    TablePrinter Table({"Events", "Mevt/s", "MaxAlive"});
    for (size_t N : {Events / 16, Events / 4, Events, Events * 4}) {
      Trace T = makeStream(N, 50, 12, 37);
      VelodromeOptions VOpts;
      VOpts.EmitDot = false;
      Velodrome V(VOpts);
      Stopwatch Timer;
      replay(T, V);
      Table.startRow();
      Table.cell(TablePrinter::withCommas(T.size()));
      Table.cell(T.size() / Timer.seconds() / 1e6, 2);
      Table.cell(V.graph().maxNodesAlive());
    }
    std::printf("3. per-event cost vs. length:\n%s\n", Table.str().c_str());
  }

  return 0;
}
